// snapshot.h - versioned binary columnar snapshots of an observation corpus.
//
// The campaign's durable unit of work is one day's observations. This module
// persists an ObservationStore slice as a binary columnar file — the default
// persistence format (the CSV in core/io.h remains as a debug/export path) —
// and reads it back whole, column by column, or as a stream of deduplicated
// EUI pairs for incremental rotation differencing.
//
// Format v1 (all integers little-endian):
//
//   offset  size  field
//   0       8     magic "SCNTSNAP"
//   8       4     format version (u32) = 1
//   12      8     row count (u64)
//   20      4     section count (u32) = 5
//   24      24*n  section table: id (u32), offset (u64), size (u64),
//                 crc32c (u32) per section
//   ...     4     header CRC-32C over every preceding header byte
//   ...           section payloads, at their recorded offsets
//
// Sections 1-4 are the store's columns verbatim (42 B/row, mirroring the
// SoA layout in core/observation.h); section 5 is derived at write time:
//
//   id  section    element                                   width
//   1   targets    address (network u64, iid u64)            16 B/row
//   2   responses  address (network u64, iid u64)            16 B/row
//   3   type_code  (icmp type << 8) | code (u16)              2 B/row
//   4   times      send time, microseconds (i64)              8 B/row
//   5   eui_pairs  <target, EUI-64 response> address pair    32 B/pair
//
// eui_pairs is deduplicated by target (last response wins) in target
// first-sighting order — exactly the rotation detector's Snapshot recorded
// over the rows — so an incremental diff streams it without rebuilding the
// index from 42 B/row of raw observations.
//
// Versioning: the magic never changes; readers reject any other version
// (there is no cross-version migration — snapshots are campaign artifacts,
// regenerable from a re-run, not archival interchange). Any layout change
// bumps the version. Unknown section ids are ignored on read, so a future
// writer may append sections without a version bump as long as sections 1-5
// keep their meaning.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "container/flat_hash.h"
#include "core/observation.h"
#include "netbase/ipv6_address.h"
#include "sim/sim_time.h"
#include "trace/recorder.h"

namespace scent::corpus {

inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// Why an open or read failed. Never UB on corrupt input: every failure
/// mode maps to one of these.
enum class SnapshotError {
  kNone,
  kOpenFailed,      ///< fopen failed (missing file, permissions).
  kBadMagic,        ///< Not a snapshot file.
  kBadVersion,      ///< Unsupported format version.
  kTruncated,       ///< Header or a section extends past end of file.
  kBadLayout,       ///< Required section missing or size != rows * width.
  kCorruptSection,  ///< A section (or the header) failed its CRC.
  kReadFailed,      ///< I/O error mid-read.
};

[[nodiscard]] const char* to_string(SnapshotError error) noexcept;

/// Accumulates observations and writes them as one snapshot file. Rows can
/// arrive one at a time, as whole stores (column-copy fast path), or as
/// store Views (the engine's per-shard slices).
class SnapshotWriter {
 public:
  void append(net::Ipv6Address target, net::Ipv6Address response,
              std::uint16_t type_code, sim::TimePoint time);

  void append(const core::Observation& obs) {
    append(obs.target, obs.response,
           static_cast<std::uint16_t>(
               (static_cast<std::uint16_t>(obs.type) << 8) | obs.code),
           obs.time);
  }

  /// Column-wise append of a whole store — the shard-merge fast path.
  void append(const core::ObservationStore& store);

  /// Row-wise append of a store window (e.g. one sweep unit's slice).
  void append(const core::ObservationStore::View& view);

  [[nodiscard]] std::uint64_t rows() const noexcept {
    return targets_.size();
  }
  [[nodiscard]] std::uint64_t eui_pair_count() const noexcept {
    return eui_pairs_.size();
  }

  /// Exact size in bytes of the file write() will produce.
  [[nodiscard]] std::uint64_t encoded_size() const noexcept;

  /// Writes the snapshot. False on any I/O failure, including buffered
  /// writes that only surface at flush/close time (disk full).
  [[nodiscard]] bool write(const std::string& path) const;

  /// Optional section-I/O instrumentation: write() brackets each section
  /// with begin/end events in `recorder` and observes the per-section
  /// wall-ns into `sketch`. Either may be null; both default off.
  void set_trace(trace::TraceRecorder* recorder,
                 trace::QuantileSketch* sketch) noexcept {
    trace_recorder_ = recorder;
    trace_sketch_ = sketch;
  }

  void clear();

 private:
  template <typename Emit>
  void emit_section(std::uint32_t id, Emit&& emit) const;

  std::vector<net::Ipv6Address> targets_;
  std::vector<net::Ipv6Address> responses_;
  std::vector<std::uint16_t> type_codes_;
  std::vector<sim::TimePoint> times_;
  /// target -> latest EUI-64 response, target first-sighting order (the
  /// rotation Snapshot semantics, precomputed).
  container::FlatMap<net::Ipv6Address, net::Ipv6Address, net::Ipv6AddressHash>
      eui_pairs_;
  trace::TraceRecorder* trace_recorder_ = nullptr;
  trace::QuantileSketch* trace_sketch_ = nullptr;
};

/// Opens a snapshot and serves columns lazily: each read_* call touches
/// only that column's section, so consumers that need one column (the
/// tracker reads responses + times, the incremental rotation diff streams
/// only eui_pairs) never pay for the full 42 B/row.
class SnapshotReader {
 public:
  SnapshotReader() = default;
  ~SnapshotReader();
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  /// Validates magic, version, header CRC and section layout. On failure
  /// returns false with error() set; the reader stays unusable.
  [[nodiscard]] bool open(const std::string& path);
  void close();

  /// Optional section-I/O instrumentation, mirroring SnapshotWriter: each
  /// section read is bracketed in `recorder` and its wall-ns observed into
  /// `sketch`. Either may be null; both default off.
  void set_trace(trace::TraceRecorder* recorder,
                 trace::QuantileSketch* sketch) noexcept {
    trace_recorder_ = recorder;
    trace_sketch_ = sketch;
  }

  [[nodiscard]] bool is_open() const noexcept { return file_ != nullptr; }
  [[nodiscard]] SnapshotError error() const noexcept { return error_; }
  [[nodiscard]] std::uint64_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint64_t eui_pair_count() const noexcept;

  // Lazy per-column reads. Each replaces `out`; false (with error() set)
  // on CRC mismatch or I/O error.
  [[nodiscard]] bool read_targets(std::vector<net::Ipv6Address>& out);
  [[nodiscard]] bool read_responses(std::vector<net::Ipv6Address>& out);
  [[nodiscard]] bool read_type_codes(std::vector<std::uint16_t>& out);
  [[nodiscard]] bool read_times(std::vector<sim::TimePoint>& out);

  /// Streams the deduplicated <target, EUI-64 response> pairs in stored
  /// order without materializing them.
  [[nodiscard]] bool for_each_eui_pair(
      const std::function<void(net::Ipv6Address target,
                               net::Ipv6Address response)>& fn);

  /// Replays every row into `store` (appending, through the store's own
  /// add path so its indexes rebuild with the original insertion history).
  [[nodiscard]] bool read_into(core::ObservationStore& store);

  /// The whole snapshot as a fresh store; nullopt on any failure.
  [[nodiscard]] std::optional<core::ObservationStore> read_store();

 private:
  struct Section {
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
    std::uint32_t crc = 0;
    bool present = false;
  };

  static constexpr std::uint32_t kMaxSectionId = 5;

  [[nodiscard]] bool fail(SnapshotError error) noexcept;
  [[nodiscard]] const Section* section(std::uint32_t id) const noexcept;

  /// Reads one section in chunks (chunk size a multiple of every element
  /// width, so elements never straddle chunks), verifying its CRC; the
  /// visitor decodes each chunk.
  template <typename Visit>
  [[nodiscard]] bool read_section(std::uint32_t id, Visit&& visit);

  std::FILE* file_ = nullptr;
  SnapshotError error_ = SnapshotError::kNone;
  std::uint64_t rows_ = 0;
  std::array<Section, kMaxSectionId + 1> sections_{};
  trace::TraceRecorder* trace_recorder_ = nullptr;
  trace::QuantileSketch* trace_sketch_ = nullptr;
};

}  // namespace scent::corpus
