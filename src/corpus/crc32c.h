// crc32c.h - CRC-32C (Castagnoli) checksums for snapshot sections.
//
// Every section of the on-disk snapshot format carries a CRC-32C so that
// truncation and bit rot are detected at read time instead of surfacing as
// silently wrong corpora. Software slice-by-8 implementation — fast enough
// that checksumming never gates snapshot throughput (bench_micro's save/load
// guards include it), and free of ISA-specific intrinsics.
#pragma once

#include <cstddef>
#include <cstdint>

namespace scent::corpus {

/// Incremental CRC-32C accumulator: update() over any chunking of the input
/// yields the same value() as a single pass.
class Crc32c {
 public:
  void update(const void* data, std::size_t size) noexcept;

  [[nodiscard]] std::uint32_t value() const noexcept {
    return state_ ^ 0xffffffffu;
  }

  void reset() noexcept { state_ = 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

/// One-shot convenience over a contiguous buffer.
[[nodiscard]] inline std::uint32_t crc32c(const void* data,
                                          std::size_t size) noexcept {
  Crc32c crc;
  crc.update(data, size);
  return crc.value();
}

}  // namespace scent::corpus
