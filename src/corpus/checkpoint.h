// checkpoint.h - the campaign checkpoint manifest.
//
// A checkpointed campaign persists one snapshot file per completed day plus
// this manifest, which carries everything run_campaign needs to continue
// from day N bit-identically to an uninterrupted run (DESIGN.md §5f): the
// seed and schedule parameters (validated on resume — a mismatched resume
// is a different campaign, not a continuation), the virtual-clock cursor
// after each day, the per-day funnel counters, the frozen per-AS allocation
// inference from day 0, and the snapshot chain itself.
//
// The manifest is line-oriented text in the io.cpp idiom: '#' comments and
// blank lines are skipped, unknown keys are ignored (forward compat), and a
// trailing "end <day-count>" marker makes truncation detectable. Writes go
// through a temp file + rename so a crash mid-save never clobbers the last
// good manifest.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "routing/bgp_table.h"
#include "sim/sim_time.h"

namespace scent::corpus {

inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

/// One completed campaign day: its funnel counters, the clock position
/// after its sweep, and the snapshot file holding its observations.
struct CheckpointDay {
  std::int64_t day = 0;  ///< Absolute day index (sim::day_of).
  std::uint64_t probes = 0;
  std::uint64_t responses = 0;
  std::uint64_t unique_eui64_iids = 0;
  std::uint64_t rows = 0;       ///< Snapshot row count (chain validation).
  sim::TimePoint clock_us = 0;  ///< Virtual clock after the day's sweep.
  std::string snapshot_file;    ///< File name, relative to the checkpoint dir.
};

struct CampaignCheckpoint {
  std::uint32_t version = kCheckpointFormatVersion;
  std::uint64_t seed = 0;
  std::int64_t first_day = 0;  ///< Absolute day index of campaign day 0.
  sim::Duration scan_time_of_day = 0;
  bool allocation_granularity_after_day0 = true;
  /// Digest of the target prefix list; a resume against different targets
  /// is rejected (it would not be the same campaign).
  std::uint64_t targets_digest = 0;
  /// Frozen day-0 Algorithm 1 result, so resumed days > 0 probe at the
  /// same granularity without re-running the inference.
  std::map<routing::Asn, unsigned> allocation_length_by_as;
  std::vector<CheckpointDay> days;
};

/// "day_0007.snap" — the chain's snapshot naming scheme.
[[nodiscard]] std::string snapshot_file_name(std::size_t day_ordinal);

/// The manifest's path inside a checkpoint directory.
[[nodiscard]] std::string manifest_path(const std::string& dir);

/// Atomically replaces the manifest in `dir` (temp file + rename). False
/// on any I/O failure, including failures surfacing at close.
[[nodiscard]] bool save_checkpoint(const std::string& dir,
                                   const CampaignCheckpoint& checkpoint);

/// Loads and validates the manifest; nullopt if missing, unparseable,
/// version-mismatched, or truncated (no "end" marker / count mismatch).
[[nodiscard]] std::optional<CampaignCheckpoint> load_checkpoint(
    const std::string& dir);

}  // namespace scent::corpus
