#include "corpus/snapshot.h"

#include <algorithm>
#include <cstring>

#include "corpus/crc32c.h"
#include "corpus/encoding.h"
#include "engine/parallel.h"
#include "netbase/eui64.h"

namespace scent::corpus {
namespace {

constexpr char kMagic[8] = {'S', 'C', 'N', 'T', 'S', 'N', 'A', 'P'};
constexpr std::uint32_t kSectionCount = 5;
/// Fixed header (24) + section table (24 per section) + header CRC (4).
constexpr std::uint64_t kHeaderSize = 24 + kSectionCount * 24 + 4;
/// Chunk size for streamed v1 encode/decode. A multiple of every element
/// width (16, 2, 8, 32), so elements never straddle chunk boundaries.
constexpr std::size_t kChunkBytes = std::size_t{1} << 18;
/// v2 block-directory entry: payload offset (8) + element count (4) +
/// payload bytes (4) + payload CRC (4) + min/max stats (8 + 8).
constexpr std::size_t kDirEntryBytes = 36;
/// Reader-side sanity cap on a directory entry's element count. The writer
/// emits kSnapshotBlockElements; anything far past it is a forged index,
/// rejected before it can size an allocation.
constexpr std::uint64_t kMaxBlockElements = std::uint64_t{1} << 22;

/// RAII stdio handle (same discipline as core/io.cpp: no iostreams on data
/// paths, close() reports buffered-write failures).
struct File {
  std::FILE* handle = nullptr;
  explicit File(const std::string& path, const char* mode)
      : handle(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (handle != nullptr) std::fclose(handle);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  explicit operator bool() const noexcept { return handle != nullptr; }

  bool close() {
    if (handle == nullptr) return false;
    const bool stream_clean = std::ferror(handle) == 0;
    const bool close_clean = std::fclose(handle) == 0;
    handle = nullptr;
    return stream_clean && close_clean;
  }
};

void store_u16(unsigned char* p, std::uint16_t v) noexcept {
  p[0] = static_cast<unsigned char>(v & 0xff);
  p[1] = static_cast<unsigned char>(v >> 8);
}

void store_u32(unsigned char* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
  }
}

void store_u64(unsigned char* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
  }
}

[[nodiscard]] std::uint16_t load_u16(const unsigned char* p) noexcept {
  return static_cast<std::uint16_t>(p[0] |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

[[nodiscard]] std::uint32_t load_u32(const unsigned char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

[[nodiscard]] std::uint64_t load_u64(const unsigned char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void store_address(unsigned char* p, net::Ipv6Address a) noexcept {
  store_u64(p, a.network());
  store_u64(p + 8, a.iid());
}

[[nodiscard]] net::Ipv6Address load_address(const unsigned char* p) noexcept {
  return net::Ipv6Address{load_u64(p), load_u64(p + 8)};
}

[[nodiscard]] constexpr std::uint64_t element_width(std::uint32_t id) noexcept {
  switch (id) {
    case 1:
    case 2:
      return 16;  // address columns
    case 3:
      return 2;  // packed type+code
    case 4:
      return 8;  // times
    case 5:
      return 32;  // eui pairs
    default:
      return 0;
  }
}

/// Accumulates encoded bytes and hands out full chunks (v1 write path).
template <typename Emit>
class ChunkBuffer {
 public:
  explicit ChunkBuffer(Emit& emit) : emit_(emit) { buf_.resize(kChunkBytes); }

  /// Returns a pointer to `n` writable bytes, flushing first if needed.
  [[nodiscard]] unsigned char* grab(std::size_t n) {
    if (used_ + n > buf_.size()) flush();
    unsigned char* p = buf_.data() + used_;
    used_ += n;
    return p;
  }

  void flush() {
    if (used_ > 0) {
      emit_(buf_.data(), used_);
      used_ = 0;
    }
  }

 private:
  Emit& emit_;
  std::vector<unsigned char> buf_;
  std::size_t used_ = 0;
};

// ---------------------------------------------------------------------------
// v2 per-column block codecs (DESIGN.md §5j). Every encoder appends one
// block's payload for `n` elements; every decoder consumes it back from a
// cursor, bounds-checked, and the caller requires the cursor to land exactly
// on the block end. Blocks share no state: each stream's "previous value"
// seeds at zero per block, which is what makes blocks skippable and
// parallel-codable.

/// Addresses: sorted network dictionary (delta varints — /64-clustered
/// columns have few distinct networks per 64Ki rows), then one dictionary
/// index varint per element, then the iid stream as zigzag deltas (EUI-64
/// iids repeat and sequential probe iids step by one, so deltas stay short).
/// Returns {min, max} network for the block's directory stats.
std::pair<std::uint64_t, std::uint64_t> encode_addresses(
    const net::Ipv6Address* a, std::size_t n,
    std::vector<unsigned char>& out) {
  std::vector<std::uint64_t> dict;
  dict.reserve(n);
  for (std::size_t i = 0; i < n; ++i) dict.push_back(a[i].network());
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());

  put_varint(out, dict.size());
  std::uint64_t prev = 0;
  for (const std::uint64_t d : dict) {
    put_varint(out, d - prev);
    prev = d;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto it =
        std::lower_bound(dict.begin(), dict.end(), a[i].network());
    put_varint(out, static_cast<std::uint64_t>(it - dict.begin()));
  }
  std::uint64_t prev_iid = 0;
  for (std::size_t i = 0; i < n; ++i) {
    put_delta(out, a[i].iid(), prev_iid);
    prev_iid = a[i].iid();
  }
  return {dict.front(), dict.back()};
}

[[nodiscard]] bool decode_addresses(const unsigned char** cursor,
                                    const unsigned char* end, std::size_t n,
                                    net::Ipv6Address* out) {
  std::uint64_t dict_count = 0;
  if (!get_varint(cursor, end, dict_count)) return false;
  // Distinct networks cannot exceed elements; a forged count larger than
  // that (or than the remaining payload, one byte per entry minimum) is
  // rejected before it can size the dictionary.
  if (dict_count == 0 || dict_count > n) return false;
  std::vector<std::uint64_t> dict;
  dict.reserve(static_cast<std::size_t>(dict_count));
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < dict_count; ++i) {
    std::uint64_t delta = 0;
    if (!get_varint(cursor, end, delta)) return false;
    prev += delta;
    dict.push_back(prev);
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t idx = 0;
    if (!get_varint(cursor, end, idx)) return false;
    if (idx >= dict_count) return false;
    out[i] = net::Ipv6Address{dict[static_cast<std::size_t>(idx)], 0};
  }
  std::uint64_t prev_iid = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!get_delta(cursor, end, prev_iid, prev_iid)) return false;
    out[i] = out[i].with_iid(prev_iid);
  }
  return true;
}

/// type+code: run-length {value, run} varint pairs — a sweep is almost
/// entirely echo replies, so a 64Ki block is typically a handful of runs.
/// Returns {min, max} packed value.
std::pair<std::uint64_t, std::uint64_t> encode_type_codes(
    const std::uint16_t* tc, std::size_t n, std::vector<unsigned char>& out) {
  std::uint16_t min_v = tc[0];
  std::uint16_t max_v = tc[0];
  std::size_t i = 0;
  while (i < n) {
    const std::uint16_t v = tc[i];
    std::size_t j = i + 1;
    while (j < n && tc[j] == v) ++j;
    put_varint(out, v);
    put_varint(out, j - i);
    min_v = std::min(min_v, v);
    max_v = std::max(max_v, v);
    i = j;
  }
  return {min_v, max_v};
}

[[nodiscard]] bool decode_type_codes(const unsigned char** cursor,
                                     const unsigned char* end, std::size_t n,
                                     std::uint16_t* out) {
  std::size_t produced = 0;
  while (produced < n) {
    std::uint64_t v = 0;
    std::uint64_t run = 0;
    if (!get_varint(cursor, end, v)) return false;
    if (v > 0xffff) return false;
    if (!get_varint(cursor, end, run)) return false;
    if (run == 0 || run > n - produced) return false;
    for (std::uint64_t k = 0; k < run; ++k) {
      out[produced++] = static_cast<std::uint16_t>(v);
    }
  }
  return true;
}

/// Times: run-length-encoded deltas — {zigzag delta, run} pairs where every
/// element in a run advances by the same step. Sweep timestamps are
/// monotone with near-constant spacing, so whole blocks collapse to a few
/// pairs. Returns {min, max} time (as u64 bit patterns of the i64 values;
/// compared as i64 when aggregated).
std::pair<std::uint64_t, std::uint64_t> encode_times(
    const sim::TimePoint* t, std::size_t n, std::vector<unsigned char>& out) {
  std::int64_t min_v = static_cast<std::int64_t>(t[0]);
  std::int64_t max_v = min_v;
  std::uint64_t prev = 0;
  std::size_t i = 0;
  while (i < n) {
    const auto vi = static_cast<std::uint64_t>(t[i]);
    const std::uint64_t delta = vi - prev;
    std::uint64_t cur = vi;
    std::size_t j = i + 1;
    while (j < n && static_cast<std::uint64_t>(t[j]) - cur == delta) {
      cur += delta;
      ++j;
    }
    put_varint(out, zigzag_encode(static_cast<std::int64_t>(delta)));
    put_varint(out, j - i);
    for (std::size_t k = i; k < j; ++k) {
      const auto v = static_cast<std::int64_t>(t[k]);
      min_v = std::min(min_v, v);
      max_v = std::max(max_v, v);
    }
    prev = cur;
    i = j;
  }
  return {static_cast<std::uint64_t>(min_v), static_cast<std::uint64_t>(max_v)};
}

[[nodiscard]] bool decode_times(const unsigned char** cursor,
                                const unsigned char* end, std::size_t n,
                                sim::TimePoint* out) {
  std::uint64_t prev = 0;
  std::size_t produced = 0;
  while (produced < n) {
    std::uint64_t raw = 0;
    std::uint64_t run = 0;
    if (!get_varint(cursor, end, raw)) return false;
    const auto delta = static_cast<std::uint64_t>(zigzag_decode(raw));
    if (!get_varint(cursor, end, run)) return false;
    if (run == 0 || run > n - produced) return false;
    for (std::uint64_t k = 0; k < run; ++k) {
      prev += delta;
      out[produced++] = static_cast<sim::TimePoint>(prev);
    }
  }
  return true;
}

}  // namespace

const char* to_string(SnapshotError error) noexcept {
  switch (error) {
    case SnapshotError::kNone:
      return "none";
    case SnapshotError::kOpenFailed:
      return "open failed";
    case SnapshotError::kBadMagic:
      return "bad magic";
    case SnapshotError::kBadVersion:
      return "unsupported format version";
    case SnapshotError::kTruncated:
      return "truncated file";
    case SnapshotError::kBadLayout:
      return "bad section layout";
    case SnapshotError::kCorruptSection:
      return "section CRC mismatch";
    case SnapshotError::kReadFailed:
      return "read failed";
  }
  return "unknown";
}

void SnapshotWriter::append(net::Ipv6Address target, net::Ipv6Address response,
                            std::uint16_t type_code, sim::TimePoint time) {
  targets_.push_back(target);
  responses_.push_back(response);
  type_codes_.push_back(type_code);
  times_.push_back(time);
  if (net::is_eui64(response)) eui_pairs_[target] = response;
  cached_v2_size_.reset();
}

void SnapshotWriter::append(const core::ObservationStore& store) {
  const auto targets = store.target_column();
  const auto responses = store.response_column();
  const auto type_codes = store.type_code_column();
  const auto times = store.time_column();
  targets_.insert(targets_.end(), targets.begin(), targets.end());
  responses_.insert(responses_.end(), responses.begin(), responses.end());
  type_codes_.insert(type_codes_.end(), type_codes.begin(), type_codes.end());
  times_.insert(times_.end(), times.begin(), times.end());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    if (net::is_eui64(responses[i])) eui_pairs_[targets[i]] = responses[i];
  }
  cached_v2_size_.reset();
}

void SnapshotWriter::append(const core::ObservationStore::View& view) {
  for (std::size_t i = 0; i < view.size(); ++i) {
    append(view.target(i), view.response(i), view.type_code(i), view.time(i));
  }
}

void SnapshotWriter::clear() {
  targets_.clear();
  responses_.clear();
  type_codes_.clear();
  times_.clear();
  eui_pairs_.clear();
  cached_v2_size_.reset();
}

void SnapshotWriter::set_format_version(std::uint32_t version) noexcept {
  if (version != kSnapshotFormatV1 && version != kSnapshotFormatV2) return;
  version_ = version;
}

template <typename Emit>
void SnapshotWriter::emit_section(std::uint32_t id, Emit&& emit) const {
  ChunkBuffer<Emit> out{emit};
  switch (id) {
    case 1:
      for (const auto a : targets_) store_address(out.grab(16), a);
      break;
    case 2:
      for (const auto a : responses_) store_address(out.grab(16), a);
      break;
    case 3:
      for (const auto tc : type_codes_) store_u16(out.grab(2), tc);
      break;
    case 4:
      for (const auto t : times_) {
        store_u64(out.grab(8), static_cast<std::uint64_t>(t));
      }
      break;
    case 5:
      for (const auto& [target, response] : eui_pairs_) {
        unsigned char* p = out.grab(32);
        store_address(p, target);
        store_address(p + 16, response);
      }
      break;
    default:
      break;
  }
  out.flush();
}

/// One fully encoded v2 file, minus the fixed header: per-section block
/// payloads plus the serialized directories and their CRCs.
struct SnapshotWriter::EncodedV2 {
  struct Block {
    std::vector<unsigned char> bytes;
    std::uint32_t elements = 0;
    std::uint32_t crc = 0;
    std::uint64_t min_stat = 0;
    std::uint64_t max_stat = 0;
  };
  struct Section {
    std::vector<Block> blocks;
    std::vector<unsigned char> dir;
    std::uint64_t payload_bytes = 0;
  };
  std::array<Section, kSectionCount> sections{};
  std::array<std::uint32_t, kSectionCount> dir_crcs{};
  std::array<std::uint64_t, kSectionCount> sizes{};
  std::uint64_t total_size = 0;
};

void SnapshotWriter::encode_v2(EncodedV2& out) const {
  // The eui_pairs section encodes as two address sub-streams, so the
  // FlatMap's key/value sequences are materialized once, in stored order.
  std::vector<net::Ipv6Address> pair_targets;
  std::vector<net::Ipv6Address> pair_responses;
  pair_targets.reserve(eui_pairs_.size());
  pair_responses.reserve(eui_pairs_.size());
  for (const auto& [target, response] : eui_pairs_) {
    pair_targets.push_back(target);
    pair_responses.push_back(response);
  }

  const std::size_t counts[kSectionCount] = {
      targets_.size(), responses_.size(), type_codes_.size(), times_.size(),
      pair_targets.size()};

  struct BlockTask {
    std::uint32_t sec = 0;
    std::size_t block = 0;
  };
  std::vector<BlockTask> tasks;
  for (std::uint32_t s = 0; s < kSectionCount; ++s) {
    const std::size_t blocks =
        (counts[s] + kSnapshotBlockElements - 1) / kSnapshotBlockElements;
    out.sections[s].blocks.resize(blocks);
    for (std::size_t b = 0; b < blocks; ++b) tasks.push_back({s, b});
  }

  const auto encode_block = [&](const BlockTask& task) {
    const std::size_t first = task.block * kSnapshotBlockElements;
    const std::size_t n =
        std::min(kSnapshotBlockElements, counts[task.sec] - first);
    EncodedV2::Block& blk = out.sections[task.sec].blocks[task.block];
    std::pair<std::uint64_t, std::uint64_t> stats{0, 0};
    switch (task.sec) {
      case 0:
        stats = encode_addresses(targets_.data() + first, n, blk.bytes);
        break;
      case 1:
        stats = encode_addresses(responses_.data() + first, n, blk.bytes);
        break;
      case 2:
        stats = encode_type_codes(type_codes_.data() + first, n, blk.bytes);
        break;
      case 3:
        stats = encode_times(times_.data() + first, n, blk.bytes);
        break;
      case 4:
        // Target stream then response stream, back to back; stats follow
        // the targets (the rotation diff's skip key is the target network).
        stats = encode_addresses(pair_targets.data() + first, n, blk.bytes);
        encode_addresses(pair_responses.data() + first, n, blk.bytes);
        break;
      default:
        break;
    }
    blk.elements = static_cast<std::uint32_t>(n);
    blk.min_stat = stats.first;
    blk.max_stat = stats.second;
    blk.crc = crc32c(blk.bytes.data(), blk.bytes.size());
  };

  // Blocks are fixed row partitions encoded with per-block state, so any
  // assignment of blocks to workers produces the same bytes — threads are
  // purely a wall-clock knob.
  const unsigned workers = std::min<unsigned>(
      engine::effective_threads(threads_, /*oversubscribe=*/false),
      static_cast<unsigned>(std::max<std::size_t>(tasks.size(), 1)));
  engine::run_shards(workers, [&](unsigned shard) {
    const engine::RowRange range =
        engine::shard_rows(tasks.size(), workers, shard);
    for (std::size_t i = range.begin; i < range.end; ++i) {
      encode_block(tasks[i]);
    }
  });

  out.total_size = kHeaderSize;
  for (std::uint32_t s = 0; s < kSectionCount; ++s) {
    EncodedV2::Section& sec = out.sections[s];
    sec.dir.resize(4 + sec.blocks.size() * kDirEntryBytes);
    store_u32(sec.dir.data(), static_cast<std::uint32_t>(sec.blocks.size()));
    std::uint64_t offset = 0;
    for (std::size_t b = 0; b < sec.blocks.size(); ++b) {
      const EncodedV2::Block& blk = sec.blocks[b];
      unsigned char* entry = sec.dir.data() + 4 + b * kDirEntryBytes;
      store_u64(entry, offset);
      store_u32(entry + 8, blk.elements);
      store_u32(entry + 12, static_cast<std::uint32_t>(blk.bytes.size()));
      store_u32(entry + 16, blk.crc);
      store_u64(entry + 20, blk.min_stat);
      store_u64(entry + 28, blk.max_stat);
      offset += blk.bytes.size();
    }
    sec.payload_bytes = offset;
    out.dir_crcs[s] = crc32c(sec.dir.data(), sec.dir.size());
    out.sizes[s] = sec.dir.size() + sec.payload_bytes;
    out.total_size += out.sizes[s];
  }
}

namespace {

/// Assembles the shared fixed header + section table + header CRC.
std::vector<unsigned char> build_header(
    std::uint32_t version, std::uint64_t rows,
    const std::uint64_t (&sizes)[kSectionCount],
    const std::uint32_t (&crcs)[kSectionCount]) {
  std::vector<unsigned char> header(kHeaderSize);
  std::memcpy(header.data(), kMagic, sizeof kMagic);
  store_u32(header.data() + 8, version);
  store_u64(header.data() + 12, rows);
  store_u32(header.data() + 20, kSectionCount);
  std::uint64_t offset = kHeaderSize;
  for (std::uint32_t id = 1; id <= kSectionCount; ++id) {
    unsigned char* entry = header.data() + 24 + (id - 1) * 24;
    store_u32(entry, id);
    store_u64(entry + 4, offset);
    store_u64(entry + 12, sizes[id - 1]);
    store_u32(entry + 20, crcs[id - 1]);
    offset += sizes[id - 1];
  }
  store_u32(header.data() + kHeaderSize - 4,
            crc32c(header.data(), kHeaderSize - 4));
  return header;
}

}  // namespace

std::uint64_t SnapshotWriter::encoded_size() const {
  if (version_ == kSnapshotFormatV1) {
    const std::uint64_t n = rows();
    return kHeaderSize + n * (16 + 16 + 2 + 8) + eui_pairs_.size() * 32;
  }
  if (!cached_v2_size_.has_value()) {
    EncodedV2 encoded;
    encode_v2(encoded);
    cached_v2_size_ = encoded.total_size;
  }
  return *cached_v2_size_;
}

bool SnapshotWriter::write(const std::string& path) const {
  return version_ == kSnapshotFormatV1 ? write_v1(path) : write_v2(path);
}

bool SnapshotWriter::write_v1(const std::string& path) const {
  File file{path, "wb"};
  if (!file) return false;

  const std::uint64_t n = rows();
  const std::uint64_t sizes[kSectionCount] = {n * 16, n * 16, n * 2, n * 8,
                                              eui_pairs_.size() * 32};

  // First pass: section CRCs from the in-memory columns (encode is cheap;
  // this keeps the write itself strictly sequential — no seek-back).
  std::uint32_t crcs[kSectionCount];
  for (std::uint32_t id = 1; id <= kSectionCount; ++id) {
    Crc32c crc;
    emit_section(id, [&crc](const unsigned char* p, std::size_t len) {
      crc.update(p, len);
    });
    crcs[id - 1] = crc.value();
  }

  const std::vector<unsigned char> header =
      build_header(kSnapshotFormatV1, n, sizes, crcs);
  bool ok =
      std::fwrite(header.data(), 1, header.size(), file.handle) ==
      header.size();
  for (std::uint32_t id = 1; id <= kSectionCount; ++id) {
    const trace::ScopedSample sample{trace_recorder_, trace_sketch_,
                                     "snapshot.section_write"};
    emit_section(id, [&](const unsigned char* p, std::size_t len) {
      ok = std::fwrite(p, 1, len, file.handle) == len && ok;
    });
  }
  return file.close() && ok;
}

bool SnapshotWriter::write_v2(const std::string& path) const {
  EncodedV2 encoded;
  encode_v2(encoded);
  cached_v2_size_ = encoded.total_size;

  File file{path, "wb"};
  if (!file) return false;

  std::uint64_t sizes[kSectionCount];
  std::uint32_t crcs[kSectionCount];
  for (std::uint32_t s = 0; s < kSectionCount; ++s) {
    sizes[s] = encoded.sizes[s];
    crcs[s] = encoded.dir_crcs[s];
  }
  const std::vector<unsigned char> header =
      build_header(kSnapshotFormatV2, rows(), sizes, crcs);
  bool ok =
      std::fwrite(header.data(), 1, header.size(), file.handle) ==
      header.size();
  for (std::uint32_t s = 0; s < kSectionCount; ++s) {
    const trace::ScopedSample sample{trace_recorder_, trace_sketch_,
                                     "snapshot.section_write"};
    const EncodedV2::Section& sec = encoded.sections[s];
    ok = std::fwrite(sec.dir.data(), 1, sec.dir.size(), file.handle) ==
             sec.dir.size() &&
         ok;
    for (const EncodedV2::Block& blk : sec.blocks) {
      ok = std::fwrite(blk.bytes.data(), 1, blk.bytes.size(), file.handle) ==
               blk.bytes.size() &&
           ok;
    }
  }
  return file.close() && ok;
}

SnapshotReader::~SnapshotReader() { close(); }

void SnapshotReader::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool SnapshotReader::fail(SnapshotError error) noexcept {
  error_ = error;
  close();
  return false;
}

const SnapshotReader::Section* SnapshotReader::section(
    std::uint32_t id) const noexcept {
  if (id > kMaxSectionId || !sections_[id].present) return nullptr;
  return &sections_[id];
}

std::uint64_t SnapshotReader::eui_pair_count() const noexcept {
  if (version_ == kSnapshotFormatV2) return block_dirs_[5].total_elements;
  const Section* s = section(5);
  return s == nullptr ? 0 : s->size / 32;
}

bool SnapshotReader::parse_block_dir(std::uint32_t id) {
  const Section& s = sections_[id];
  BlockDir& dir = block_dirs_[id];
  if (s.size < 4) return fail(SnapshotError::kBadLayout);
  if (std::fseek(file_, static_cast<long>(s.offset), SEEK_SET) != 0) {
    return fail(SnapshotError::kReadFailed);
  }
  unsigned char count_bytes[4];
  if (std::fread(count_bytes, 1, sizeof count_bytes, file_) !=
      sizeof count_bytes) {
    return fail(SnapshotError::kReadFailed);
  }
  const std::uint32_t block_count = load_u32(count_bytes);
  if (block_count > (s.size - 4) / kDirEntryBytes) {
    return fail(SnapshotError::kBadLayout);
  }
  const std::uint64_t dir_bytes = 4 + std::uint64_t{block_count} *
                                          kDirEntryBytes;
  std::vector<unsigned char> raw(static_cast<std::size_t>(dir_bytes));
  std::memcpy(raw.data(), count_bytes, sizeof count_bytes);
  if (block_count > 0 &&
      std::fread(raw.data() + 4, 1, raw.size() - 4, file_) != raw.size() - 4) {
    return fail(SnapshotError::kReadFailed);
  }
  // The section-table crc covers the directory: a damaged block index is
  // caught here, at open, before any payload byte is trusted.
  if (crc32c(raw.data(), raw.size()) != s.crc) {
    return fail(SnapshotError::kCorruptSection);
  }

  dir.entries.clear();
  dir.entries.reserve(block_count);
  dir.payload_base = s.offset + dir_bytes;
  dir.total_elements = 0;
  std::uint64_t expected_offset = 0;
  for (std::uint32_t b = 0; b < block_count; ++b) {
    const unsigned char* e = raw.data() + 4 + std::size_t{b} * kDirEntryBytes;
    BlockEntry entry;
    entry.payload_offset = load_u64(e);
    entry.elements = load_u32(e + 8);
    entry.payload_bytes = load_u32(e + 12);
    entry.crc = load_u32(e + 16);
    entry.min_stat = load_u64(e + 20);
    entry.max_stat = load_u64(e + 28);
    entry.first_element = dir.total_elements;
    // Blocks are contiguous in directory order; any other offset pattern
    // is a forged index. Element counts are bounded so a crafted entry
    // cannot size an absurd allocation.
    if (entry.payload_offset != expected_offset || entry.elements == 0 ||
        entry.elements > kMaxBlockElements || entry.payload_bytes == 0) {
      return fail(SnapshotError::kBadLayout);
    }
    expected_offset += entry.payload_bytes;
    dir.total_elements += entry.elements;
    dir.entries.push_back(entry);
  }
  if (dir_bytes + expected_offset != s.size) {
    return fail(SnapshotError::kBadLayout);
  }
  if (id != 5 && dir.total_elements != rows_) {
    return fail(SnapshotError::kBadLayout);
  }
  return true;
}

bool SnapshotReader::open(const std::string& path) {
  close();
  error_ = SnapshotError::kNone;
  version_ = 0;
  rows_ = 0;
  sections_ = {};
  block_dirs_ = {};
  blocks_read_ = 0;
  blocks_skipped_ = 0;

  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) return fail(SnapshotError::kOpenFailed);

  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return fail(SnapshotError::kReadFailed);
  }
  const long file_size = std::ftell(file_);
  if (file_size < 0 || std::fseek(file_, 0, SEEK_SET) != 0) {
    return fail(SnapshotError::kReadFailed);
  }
  const auto size = static_cast<std::uint64_t>(file_size);

  unsigned char fixed[24];
  if (std::fread(fixed, 1, sizeof fixed, file_) != sizeof fixed) {
    return fail(SnapshotError::kTruncated);
  }
  if (std::memcmp(fixed, kMagic, sizeof kMagic) != 0) {
    return fail(SnapshotError::kBadMagic);
  }
  version_ = load_u32(fixed + 8);
  if (version_ != kSnapshotFormatV1 && version_ != kSnapshotFormatV2) {
    return fail(SnapshotError::kBadVersion);
  }
  rows_ = load_u64(fixed + 12);
  const std::uint32_t section_count = load_u32(fixed + 20);
  // Sanity bound on the table size; a writer emits exactly 5 sections, but
  // unknown extra sections are tolerated (see header comment).
  if (section_count < kSectionCount || section_count > 64) {
    return fail(SnapshotError::kBadLayout);
  }

  std::vector<unsigned char> table(std::size_t{section_count} * 24);
  if (std::fread(table.data(), 1, table.size(), file_) != table.size()) {
    return fail(SnapshotError::kTruncated);
  }
  unsigned char stored_crc[4];
  if (std::fread(stored_crc, 1, sizeof stored_crc, file_) !=
      sizeof stored_crc) {
    return fail(SnapshotError::kTruncated);
  }
  Crc32c header_crc;
  header_crc.update(fixed, sizeof fixed);
  header_crc.update(table.data(), table.size());
  if (header_crc.value() != load_u32(stored_crc)) {
    return fail(SnapshotError::kCorruptSection);
  }

  const std::uint64_t header_end = 24 + table.size() + 4;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const unsigned char* entry = table.data() + std::size_t{i} * 24;
    const std::uint32_t id = load_u32(entry);
    Section s;
    s.offset = load_u64(entry + 4);
    s.size = load_u64(entry + 12);
    s.crc = load_u32(entry + 20);
    s.present = true;
    if (s.offset < header_end || s.offset > size || s.size > size - s.offset) {
      return fail(SnapshotError::kTruncated);
    }
    if (id == 0 || id > kMaxSectionId) continue;  // unknown section: ignore
    if (sections_[id].present) return fail(SnapshotError::kBadLayout);
    sections_[id] = s;
  }

  // All sections are required in both versions.
  if (rows_ > ~std::uint64_t{0} / 16) return fail(SnapshotError::kBadLayout);
  for (std::uint32_t id = 1; id <= kMaxSectionId; ++id) {
    if (section(id) == nullptr) return fail(SnapshotError::kBadLayout);
  }
  if (version_ == kSnapshotFormatV1) {
    // v1 column sections must be exactly rows * width (the eui_pairs
    // section is derived, so only pair-aligned).
    for (std::uint32_t id = 1; id <= kMaxSectionId; ++id) {
      const Section* s = section(id);
      if (id == 5) {
        if (s->size % 32 != 0) return fail(SnapshotError::kBadLayout);
      } else if (s->size != rows_ * element_width(id)) {
        return fail(SnapshotError::kBadLayout);
      }
    }
    return true;
  }
  // v2: parse and validate every section's block directory up front.
  for (std::uint32_t id = 1; id <= kMaxSectionId; ++id) {
    if (!parse_block_dir(id)) return false;
  }
  return true;
}

template <typename Visit>
bool SnapshotReader::read_section(std::uint32_t id, Visit&& visit) {
  if (file_ == nullptr) return false;  // preserves the original error
  const Section* s = section(id);
  if (s == nullptr) return fail(SnapshotError::kBadLayout);
  const trace::ScopedSample sample{trace_recorder_, trace_sketch_,
                                   "snapshot.section_read"};
  if (std::fseek(file_, static_cast<long>(s->offset), SEEK_SET) != 0) {
    return fail(SnapshotError::kReadFailed);
  }
  std::vector<unsigned char> buf(
      static_cast<std::size_t>(std::min<std::uint64_t>(kChunkBytes, s->size)));
  Crc32c crc;
  std::uint64_t remaining = s->size;
  while (remaining > 0) {
    const auto want =
        static_cast<std::size_t>(std::min<std::uint64_t>(kChunkBytes,
                                                         remaining));
    if (std::fread(buf.data(), 1, want, file_) != want) {
      return fail(SnapshotError::kReadFailed);
    }
    crc.update(buf.data(), want);
    visit(buf.data(), want);
    remaining -= want;
  }
  if (crc.value() != s->crc) return fail(SnapshotError::kCorruptSection);
  return true;
}

template <typename T, typename DecodeBlock>
bool SnapshotReader::read_blocks(std::uint32_t id, std::uint64_t first,
                                 std::uint64_t count, std::vector<T>& out,
                                 DecodeBlock&& decode) {
  out.clear();
  if (file_ == nullptr) return false;  // preserves the original error
  const BlockDir& dir = block_dirs_[id];
  if (count == 0) {
    blocks_skipped_ += dir.entries.size();
    return true;
  }
  const trace::ScopedSample sample{trace_recorder_, trace_sketch_,
                                   "snapshot.section_read"};

  // Overlapping block range [b0, b1) for elements [first, first + count).
  const auto begin = dir.entries.begin();
  const auto end = dir.entries.end();
  const std::size_t b0 = static_cast<std::size_t>(
      std::upper_bound(begin, end, first,
                       [](std::uint64_t v, const BlockEntry& e) {
                         return v < e.first_element;
                       }) -
      begin - 1);
  const std::size_t b1 = static_cast<std::size_t>(
      std::lower_bound(begin, end, first + count,
                       [](const BlockEntry& e, std::uint64_t v) {
                         return e.first_element < v;
                       }) -
      begin);
  const std::size_t nblocks = b1 - b0;
  blocks_read_ += nblocks;
  blocks_skipped_ += dir.entries.size() - nblocks;

  // One sequential I/O pass over the covering byte range, then per-block
  // CRC + decode fan out across threads into disjoint output slices.
  const std::uint64_t rel_begin = dir.entries[b0].payload_offset;
  const std::uint64_t rel_end =
      dir.entries[b1 - 1].payload_offset + dir.entries[b1 - 1].payload_bytes;
  std::vector<unsigned char> buf(static_cast<std::size_t>(rel_end - rel_begin));
  if (std::fseek(file_,
                 static_cast<long>(dir.payload_base + rel_begin),
                 SEEK_SET) != 0) {
    return fail(SnapshotError::kReadFailed);
  }
  if (std::fread(buf.data(), 1, buf.size(), file_) != buf.size()) {
    return fail(SnapshotError::kReadFailed);
  }

  const std::uint64_t covered_first = dir.entries[b0].first_element;
  const std::uint64_t covered_count = dir.entries[b1 - 1].first_element +
                                      dir.entries[b1 - 1].elements -
                                      covered_first;
  const bool exact = covered_first == first && covered_count == count;
  std::vector<T> scratch;
  if (exact) {
    out.resize(static_cast<std::size_t>(count));
  } else {
    scratch.resize(static_cast<std::size_t>(covered_count));
  }
  T* const dst = exact ? out.data() : scratch.data();

  std::vector<SnapshotError> block_errors(nblocks, SnapshotError::kNone);
  const unsigned workers = std::min<unsigned>(
      engine::effective_threads(threads_, /*oversubscribe=*/false),
      static_cast<unsigned>(nblocks));
  engine::run_shards(workers, [&](unsigned shard) {
    const engine::RowRange range = engine::shard_rows(nblocks, workers, shard);
    for (std::size_t i = range.begin; i < range.end; ++i) {
      const BlockEntry& blk = dir.entries[b0 + i];
      const unsigned char* payload =
          buf.data() + (blk.payload_offset - rel_begin);
      if (crc32c(payload, blk.payload_bytes) != blk.crc) {
        block_errors[i] = SnapshotError::kCorruptSection;
        continue;
      }
      const unsigned char* cursor = payload;
      const unsigned char* payload_end = payload + blk.payload_bytes;
      // A CRC-valid block whose content decodes inconsistently (forged
      // dictionary index, run overflow, trailing bytes) is corruption too.
      if (!decode(&cursor, payload_end, blk.elements,
                  dst + (blk.first_element - covered_first)) ||
          cursor != payload_end) {
        block_errors[i] = SnapshotError::kCorruptSection;
      }
    }
  });
  for (const SnapshotError e : block_errors) {
    if (e != SnapshotError::kNone) {
      out.clear();
      return fail(e);
    }
  }

  if (!exact) {
    const auto skip = static_cast<std::size_t>(first - covered_first);
    out.assign(scratch.begin() + static_cast<std::ptrdiff_t>(skip),
               scratch.begin() +
                   static_cast<std::ptrdiff_t>(skip + count));
  }
  return true;
}

bool SnapshotReader::read_targets(std::vector<net::Ipv6Address>& out) {
  return read_targets(out, 0, rows_);
}

bool SnapshotReader::read_responses(std::vector<net::Ipv6Address>& out) {
  return read_responses(out, 0, rows_);
}

bool SnapshotReader::read_type_codes(std::vector<std::uint16_t>& out) {
  return read_type_codes(out, 0, rows_);
}

bool SnapshotReader::read_times(std::vector<sim::TimePoint>& out) {
  return read_times(out, 0, rows_);
}

namespace {

/// Clamps a requested row window to [0, total).
void clamp_window(std::uint64_t total, std::uint64_t& first,
                  std::uint64_t& count) noexcept {
  first = std::min(first, total);
  count = std::min(count, total - first);
}

}  // namespace

template <typename T>
bool SnapshotReader::read_column(std::uint32_t id, std::uint64_t first,
                                 std::uint64_t count, std::vector<T>& out) {
  // v1 has one whole-section CRC — there is no way to verify a window
  // without reading the section — so a range read is a full read + slice
  // (the documented v1 semantics; no skipping, counters stay zero).
  std::vector<T> all;
  all.reserve(static_cast<std::size_t>(rows_));
  const std::uint64_t width = element_width(id);
  const bool ok =
      read_section(id, [&all, width](const unsigned char* p, std::size_t len) {
        for (std::size_t i = 0; i < len; i += width) {
          if constexpr (std::is_same_v<T, net::Ipv6Address>) {
            all.push_back(load_address(p + i));
          } else if constexpr (std::is_same_v<T, std::uint16_t>) {
            all.push_back(load_u16(p + i));
          } else {
            all.push_back(static_cast<T>(load_u64(p + i)));
          }
        }
      });
  if (!ok) {
    out.clear();
    return false;
  }
  if (first == 0 && count == all.size()) {
    out = std::move(all);
  } else {
    out.assign(all.begin() + static_cast<std::ptrdiff_t>(first),
               all.begin() + static_cast<std::ptrdiff_t>(first + count));
  }
  return true;
}

bool SnapshotReader::read_targets(std::vector<net::Ipv6Address>& out,
                                  std::uint64_t first, std::uint64_t count) {
  clamp_window(rows_, first, count);
  if (version_ == kSnapshotFormatV2) {
    return read_blocks(1, first, count, out,
                       [](const unsigned char** cursor,
                          const unsigned char* end, std::size_t n,
                          net::Ipv6Address* dst) {
                         return decode_addresses(cursor, end, n, dst);
                       });
  }
  return read_column(1, first, count, out);
}

bool SnapshotReader::read_responses(std::vector<net::Ipv6Address>& out,
                                    std::uint64_t first, std::uint64_t count) {
  clamp_window(rows_, first, count);
  if (version_ == kSnapshotFormatV2) {
    return read_blocks(2, first, count, out,
                       [](const unsigned char** cursor,
                          const unsigned char* end, std::size_t n,
                          net::Ipv6Address* dst) {
                         return decode_addresses(cursor, end, n, dst);
                       });
  }
  return read_column(2, first, count, out);
}

bool SnapshotReader::read_type_codes(std::vector<std::uint16_t>& out,
                                     std::uint64_t first,
                                     std::uint64_t count) {
  clamp_window(rows_, first, count);
  if (version_ == kSnapshotFormatV2) {
    return read_blocks(3, first, count, out,
                       [](const unsigned char** cursor,
                          const unsigned char* end, std::size_t n,
                          std::uint16_t* dst) {
                         return decode_type_codes(cursor, end, n, dst);
                       });
  }
  return read_column(3, first, count, out);
}

bool SnapshotReader::read_times(std::vector<sim::TimePoint>& out,
                                std::uint64_t first, std::uint64_t count) {
  clamp_window(rows_, first, count);
  if (version_ == kSnapshotFormatV2) {
    return read_blocks(4, first, count, out,
                       [](const unsigned char** cursor,
                          const unsigned char* end, std::size_t n,
                          sim::TimePoint* dst) {
                         return decode_times(cursor, end, n, dst);
                       });
  }
  return read_column(4, first, count, out);
}

std::optional<std::pair<sim::TimePoint, sim::TimePoint>>
SnapshotReader::time_range() const noexcept {
  if (version_ != kSnapshotFormatV2) return std::nullopt;
  const BlockDir& dir = block_dirs_[4];
  if (dir.entries.empty()) return std::nullopt;
  auto min_t = static_cast<std::int64_t>(dir.entries.front().min_stat);
  auto max_t = static_cast<std::int64_t>(dir.entries.front().max_stat);
  for (const BlockEntry& e : dir.entries) {
    min_t = std::min(min_t, static_cast<std::int64_t>(e.min_stat));
    max_t = std::max(max_t, static_cast<std::int64_t>(e.max_stat));
  }
  return std::make_pair(static_cast<sim::TimePoint>(min_t),
                        static_cast<sim::TimePoint>(max_t));
}

bool SnapshotReader::for_each_eui_pair(
    const std::function<void(net::Ipv6Address, net::Ipv6Address)>& fn) {
  if (version_ != kSnapshotFormatV2) {
    return read_section(5, [&fn](const unsigned char* p, std::size_t len) {
      for (std::size_t i = 0; i < len; i += 32) {
        fn(load_address(p + i), load_address(p + i + 16));
      }
    });
  }
  if (file_ == nullptr) return false;  // preserves the original error
  const BlockDir& dir = block_dirs_[5];
  if (dir.entries.empty()) return true;
  const trace::ScopedSample sample{trace_recorder_, trace_sketch_,
                                   "snapshot.section_read"};
  // Streamed: one block of pairs in memory at a time, in stored order.
  std::vector<unsigned char> buf;
  std::vector<net::Ipv6Address> pair_targets;
  std::vector<net::Ipv6Address> pair_responses;
  for (const BlockEntry& blk : dir.entries) {
    buf.resize(blk.payload_bytes);
    if (std::fseek(file_,
                   static_cast<long>(dir.payload_base + blk.payload_offset),
                   SEEK_SET) != 0) {
      return fail(SnapshotError::kReadFailed);
    }
    if (std::fread(buf.data(), 1, buf.size(), file_) != buf.size()) {
      return fail(SnapshotError::kReadFailed);
    }
    if (crc32c(buf.data(), buf.size()) != blk.crc) {
      return fail(SnapshotError::kCorruptSection);
    }
    pair_targets.resize(blk.elements);
    pair_responses.resize(blk.elements);
    const unsigned char* cursor = buf.data();
    const unsigned char* payload_end = buf.data() + buf.size();
    if (!decode_addresses(&cursor, payload_end, blk.elements,
                          pair_targets.data()) ||
        !decode_addresses(&cursor, payload_end, blk.elements,
                          pair_responses.data()) ||
        cursor != payload_end) {
      return fail(SnapshotError::kCorruptSection);
    }
    ++blocks_read_;
    for (std::uint32_t i = 0; i < blk.elements; ++i) {
      fn(pair_targets[i], pair_responses[i]);
    }
  }
  return true;
}

bool SnapshotReader::read_into(core::ObservationStore& store) {
  std::vector<net::Ipv6Address> targets;
  std::vector<net::Ipv6Address> responses;
  std::vector<std::uint16_t> type_codes;
  std::vector<sim::TimePoint> times;
  if (!read_targets(targets) || !read_responses(responses) ||
      !read_type_codes(type_codes) || !read_times(times)) {
    return false;
  }
  store.reserve(store.size() + targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    store.add_packed(targets[i], responses[i], type_codes[i], times[i]);
  }
  return true;
}

std::optional<core::ObservationStore> SnapshotReader::read_store() {
  core::ObservationStore store;
  if (!read_into(store)) return std::nullopt;
  return store;
}

}  // namespace scent::corpus
