#include "corpus/snapshot.h"

#include <algorithm>
#include <cstring>

#include "corpus/crc32c.h"
#include "netbase/eui64.h"

namespace scent::corpus {
namespace {

constexpr char kMagic[8] = {'S', 'C', 'N', 'T', 'S', 'N', 'A', 'P'};
constexpr std::uint32_t kSectionCount = 5;
/// Fixed header (24) + section table (24 per section) + header CRC (4).
constexpr std::uint64_t kHeaderSize = 24 + kSectionCount * 24 + 4;
/// Chunk size for streamed encode/decode. A multiple of every element
/// width (16, 2, 8, 32), so elements never straddle chunk boundaries.
constexpr std::size_t kChunkBytes = std::size_t{1} << 18;

/// RAII stdio handle (same discipline as core/io.cpp: no iostreams on data
/// paths, close() reports buffered-write failures).
struct File {
  std::FILE* handle = nullptr;
  explicit File(const std::string& path, const char* mode)
      : handle(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (handle != nullptr) std::fclose(handle);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  explicit operator bool() const noexcept { return handle != nullptr; }

  bool close() {
    if (handle == nullptr) return false;
    const bool stream_clean = std::ferror(handle) == 0;
    const bool close_clean = std::fclose(handle) == 0;
    handle = nullptr;
    return stream_clean && close_clean;
  }
};

void store_u16(unsigned char* p, std::uint16_t v) noexcept {
  p[0] = static_cast<unsigned char>(v & 0xff);
  p[1] = static_cast<unsigned char>(v >> 8);
}

void store_u32(unsigned char* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
  }
}

void store_u64(unsigned char* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
  }
}

[[nodiscard]] std::uint16_t load_u16(const unsigned char* p) noexcept {
  return static_cast<std::uint16_t>(p[0] |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

[[nodiscard]] std::uint32_t load_u32(const unsigned char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

[[nodiscard]] std::uint64_t load_u64(const unsigned char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void store_address(unsigned char* p, net::Ipv6Address a) noexcept {
  store_u64(p, a.network());
  store_u64(p + 8, a.iid());
}

[[nodiscard]] net::Ipv6Address load_address(const unsigned char* p) noexcept {
  return net::Ipv6Address{load_u64(p), load_u64(p + 8)};
}

[[nodiscard]] constexpr std::uint64_t element_width(std::uint32_t id) noexcept {
  switch (id) {
    case 1:
    case 2:
      return 16;  // address columns
    case 3:
      return 2;  // packed type+code
    case 4:
      return 8;  // times
    case 5:
      return 32;  // eui pairs
    default:
      return 0;
  }
}

/// Accumulates encoded bytes and hands out full chunks.
template <typename Emit>
class ChunkBuffer {
 public:
  explicit ChunkBuffer(Emit& emit) : emit_(emit) { buf_.resize(kChunkBytes); }

  /// Returns a pointer to `n` writable bytes, flushing first if needed.
  [[nodiscard]] unsigned char* grab(std::size_t n) {
    if (used_ + n > buf_.size()) flush();
    unsigned char* p = buf_.data() + used_;
    used_ += n;
    return p;
  }

  void flush() {
    if (used_ > 0) {
      emit_(buf_.data(), used_);
      used_ = 0;
    }
  }

 private:
  Emit& emit_;
  std::vector<unsigned char> buf_;
  std::size_t used_ = 0;
};

}  // namespace

const char* to_string(SnapshotError error) noexcept {
  switch (error) {
    case SnapshotError::kNone:
      return "none";
    case SnapshotError::kOpenFailed:
      return "open failed";
    case SnapshotError::kBadMagic:
      return "bad magic";
    case SnapshotError::kBadVersion:
      return "unsupported format version";
    case SnapshotError::kTruncated:
      return "truncated file";
    case SnapshotError::kBadLayout:
      return "bad section layout";
    case SnapshotError::kCorruptSection:
      return "section CRC mismatch";
    case SnapshotError::kReadFailed:
      return "read failed";
  }
  return "unknown";
}

void SnapshotWriter::append(net::Ipv6Address target, net::Ipv6Address response,
                            std::uint16_t type_code, sim::TimePoint time) {
  targets_.push_back(target);
  responses_.push_back(response);
  type_codes_.push_back(type_code);
  times_.push_back(time);
  if (net::is_eui64(response)) eui_pairs_[target] = response;
}

void SnapshotWriter::append(const core::ObservationStore& store) {
  const auto targets = store.target_column();
  const auto responses = store.response_column();
  const auto type_codes = store.type_code_column();
  const auto times = store.time_column();
  targets_.insert(targets_.end(), targets.begin(), targets.end());
  responses_.insert(responses_.end(), responses.begin(), responses.end());
  type_codes_.insert(type_codes_.end(), type_codes.begin(), type_codes.end());
  times_.insert(times_.end(), times.begin(), times.end());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    if (net::is_eui64(responses[i])) eui_pairs_[targets[i]] = responses[i];
  }
}

void SnapshotWriter::append(const core::ObservationStore::View& view) {
  for (std::size_t i = 0; i < view.size(); ++i) {
    append(view.target(i), view.response(i), view.type_code(i), view.time(i));
  }
}

void SnapshotWriter::clear() {
  targets_.clear();
  responses_.clear();
  type_codes_.clear();
  times_.clear();
  eui_pairs_.clear();
}

template <typename Emit>
void SnapshotWriter::emit_section(std::uint32_t id, Emit&& emit) const {
  ChunkBuffer<Emit> out{emit};
  switch (id) {
    case 1:
      for (const auto a : targets_) store_address(out.grab(16), a);
      break;
    case 2:
      for (const auto a : responses_) store_address(out.grab(16), a);
      break;
    case 3:
      for (const auto tc : type_codes_) store_u16(out.grab(2), tc);
      break;
    case 4:
      for (const auto t : times_) {
        store_u64(out.grab(8), static_cast<std::uint64_t>(t));
      }
      break;
    case 5:
      for (const auto& [target, response] : eui_pairs_) {
        unsigned char* p = out.grab(32);
        store_address(p, target);
        store_address(p + 16, response);
      }
      break;
    default:
      break;
  }
  out.flush();
}

std::uint64_t SnapshotWriter::encoded_size() const noexcept {
  const std::uint64_t n = rows();
  return kHeaderSize + n * (16 + 16 + 2 + 8) + eui_pairs_.size() * 32;
}

bool SnapshotWriter::write(const std::string& path) const {
  File file{path, "wb"};
  if (!file) return false;

  const std::uint64_t n = rows();
  const std::uint64_t sizes[kSectionCount] = {n * 16, n * 16, n * 2, n * 8,
                                              eui_pairs_.size() * 32};

  // First pass: section CRCs from the in-memory columns (encode is cheap;
  // this keeps the write itself strictly sequential — no seek-back).
  std::uint32_t crcs[kSectionCount];
  for (std::uint32_t id = 1; id <= kSectionCount; ++id) {
    Crc32c crc;
    emit_section(id, [&crc](const unsigned char* p, std::size_t len) {
      crc.update(p, len);
    });
    crcs[id - 1] = crc.value();
  }

  std::vector<unsigned char> header(kHeaderSize);
  std::memcpy(header.data(), kMagic, sizeof kMagic);
  store_u32(header.data() + 8, kSnapshotFormatVersion);
  store_u64(header.data() + 12, n);
  store_u32(header.data() + 20, kSectionCount);
  std::uint64_t offset = kHeaderSize;
  for (std::uint32_t id = 1; id <= kSectionCount; ++id) {
    unsigned char* entry = header.data() + 24 + (id - 1) * 24;
    store_u32(entry, id);
    store_u64(entry + 4, offset);
    store_u64(entry + 12, sizes[id - 1]);
    store_u32(entry + 20, crcs[id - 1]);
    offset += sizes[id - 1];
  }
  store_u32(header.data() + kHeaderSize - 4,
            crc32c(header.data(), kHeaderSize - 4));

  bool ok =
      std::fwrite(header.data(), 1, header.size(), file.handle) ==
      header.size();
  for (std::uint32_t id = 1; id <= kSectionCount; ++id) {
    const trace::ScopedSample sample{trace_recorder_, trace_sketch_,
                                     "snapshot.section_write"};
    emit_section(id, [&](const unsigned char* p, std::size_t len) {
      ok = std::fwrite(p, 1, len, file.handle) == len && ok;
    });
  }
  return file.close() && ok;
}

SnapshotReader::~SnapshotReader() { close(); }

void SnapshotReader::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool SnapshotReader::fail(SnapshotError error) noexcept {
  error_ = error;
  close();
  return false;
}

const SnapshotReader::Section* SnapshotReader::section(
    std::uint32_t id) const noexcept {
  if (id > kMaxSectionId || !sections_[id].present) return nullptr;
  return &sections_[id];
}

std::uint64_t SnapshotReader::eui_pair_count() const noexcept {
  const Section* s = section(5);
  return s == nullptr ? 0 : s->size / 32;
}

bool SnapshotReader::open(const std::string& path) {
  close();
  error_ = SnapshotError::kNone;
  rows_ = 0;
  sections_ = {};

  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) return fail(SnapshotError::kOpenFailed);

  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return fail(SnapshotError::kReadFailed);
  }
  const long file_size = std::ftell(file_);
  if (file_size < 0 || std::fseek(file_, 0, SEEK_SET) != 0) {
    return fail(SnapshotError::kReadFailed);
  }
  const auto size = static_cast<std::uint64_t>(file_size);

  unsigned char fixed[24];
  if (std::fread(fixed, 1, sizeof fixed, file_) != sizeof fixed) {
    return fail(SnapshotError::kTruncated);
  }
  if (std::memcmp(fixed, kMagic, sizeof kMagic) != 0) {
    return fail(SnapshotError::kBadMagic);
  }
  if (load_u32(fixed + 8) != kSnapshotFormatVersion) {
    return fail(SnapshotError::kBadVersion);
  }
  rows_ = load_u64(fixed + 12);
  const std::uint32_t section_count = load_u32(fixed + 20);
  // Sanity bound on the table size; a v1 writer emits exactly 5 sections,
  // but unknown extra sections are tolerated (see header comment).
  if (section_count < kSectionCount || section_count > 64) {
    return fail(SnapshotError::kBadLayout);
  }

  std::vector<unsigned char> table(std::size_t{section_count} * 24);
  if (std::fread(table.data(), 1, table.size(), file_) != table.size()) {
    return fail(SnapshotError::kTruncated);
  }
  unsigned char stored_crc[4];
  if (std::fread(stored_crc, 1, sizeof stored_crc, file_) !=
      sizeof stored_crc) {
    return fail(SnapshotError::kTruncated);
  }
  Crc32c header_crc;
  header_crc.update(fixed, sizeof fixed);
  header_crc.update(table.data(), table.size());
  if (header_crc.value() != load_u32(stored_crc)) {
    return fail(SnapshotError::kCorruptSection);
  }

  const std::uint64_t header_end = 24 + table.size() + 4;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const unsigned char* entry = table.data() + std::size_t{i} * 24;
    const std::uint32_t id = load_u32(entry);
    Section s;
    s.offset = load_u64(entry + 4);
    s.size = load_u64(entry + 12);
    s.crc = load_u32(entry + 20);
    s.present = true;
    if (s.offset < header_end || s.offset > size || s.size > size - s.offset) {
      return fail(SnapshotError::kTruncated);
    }
    if (id == 0 || id > kMaxSectionId) continue;  // unknown section: ignore
    if (sections_[id].present) return fail(SnapshotError::kBadLayout);
    sections_[id] = s;
  }

  // All v1 sections are required, and the column sections must be exactly
  // rows * width (the eui_pairs section is derived, so only pair-aligned).
  if (rows_ > ~std::uint64_t{0} / 16) return fail(SnapshotError::kBadLayout);
  for (std::uint32_t id = 1; id <= kMaxSectionId; ++id) {
    const Section* s = section(id);
    if (s == nullptr) return fail(SnapshotError::kBadLayout);
    if (id == 5) {
      if (s->size % 32 != 0) return fail(SnapshotError::kBadLayout);
    } else if (s->size != rows_ * element_width(id)) {
      return fail(SnapshotError::kBadLayout);
    }
  }
  return true;
}

template <typename Visit>
bool SnapshotReader::read_section(std::uint32_t id, Visit&& visit) {
  if (file_ == nullptr) return false;  // preserves the original error
  const Section* s = section(id);
  if (s == nullptr) return fail(SnapshotError::kBadLayout);
  const trace::ScopedSample sample{trace_recorder_, trace_sketch_,
                                   "snapshot.section_read"};
  if (std::fseek(file_, static_cast<long>(s->offset), SEEK_SET) != 0) {
    return fail(SnapshotError::kReadFailed);
  }
  std::vector<unsigned char> buf(
      static_cast<std::size_t>(std::min<std::uint64_t>(kChunkBytes, s->size)));
  Crc32c crc;
  std::uint64_t remaining = s->size;
  while (remaining > 0) {
    const auto want =
        static_cast<std::size_t>(std::min<std::uint64_t>(kChunkBytes,
                                                         remaining));
    if (std::fread(buf.data(), 1, want, file_) != want) {
      return fail(SnapshotError::kReadFailed);
    }
    crc.update(buf.data(), want);
    visit(buf.data(), want);
    remaining -= want;
  }
  if (crc.value() != s->crc) return fail(SnapshotError::kCorruptSection);
  return true;
}

bool SnapshotReader::read_targets(std::vector<net::Ipv6Address>& out) {
  out.clear();
  out.reserve(rows_);
  const bool ok = read_section(1, [&out](const unsigned char* p,
                                         std::size_t len) {
    for (std::size_t i = 0; i < len; i += 16) out.push_back(load_address(p + i));
  });
  if (!ok) out.clear();
  return ok;
}

bool SnapshotReader::read_responses(std::vector<net::Ipv6Address>& out) {
  out.clear();
  out.reserve(rows_);
  const bool ok = read_section(2, [&out](const unsigned char* p,
                                         std::size_t len) {
    for (std::size_t i = 0; i < len; i += 16) out.push_back(load_address(p + i));
  });
  if (!ok) out.clear();
  return ok;
}

bool SnapshotReader::read_type_codes(std::vector<std::uint16_t>& out) {
  out.clear();
  out.reserve(rows_);
  const bool ok =
      read_section(3, [&out](const unsigned char* p, std::size_t len) {
        for (std::size_t i = 0; i < len; i += 2) out.push_back(load_u16(p + i));
      });
  if (!ok) out.clear();
  return ok;
}

bool SnapshotReader::read_times(std::vector<sim::TimePoint>& out) {
  out.clear();
  out.reserve(rows_);
  const bool ok =
      read_section(4, [&out](const unsigned char* p, std::size_t len) {
        for (std::size_t i = 0; i < len; i += 8) {
          out.push_back(static_cast<sim::TimePoint>(load_u64(p + i)));
        }
      });
  if (!ok) out.clear();
  return ok;
}

bool SnapshotReader::for_each_eui_pair(
    const std::function<void(net::Ipv6Address, net::Ipv6Address)>& fn) {
  return read_section(5, [&fn](const unsigned char* p, std::size_t len) {
    for (std::size_t i = 0; i < len; i += 32) {
      fn(load_address(p + i), load_address(p + i + 16));
    }
  });
}

bool SnapshotReader::read_into(core::ObservationStore& store) {
  std::vector<net::Ipv6Address> targets;
  std::vector<net::Ipv6Address> responses;
  std::vector<std::uint16_t> type_codes;
  std::vector<sim::TimePoint> times;
  if (!read_targets(targets) || !read_responses(responses) ||
      !read_type_codes(type_codes) || !read_times(times)) {
    return false;
  }
  store.reserve(store.size() + targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    store.add_packed(targets[i], responses[i], type_codes[i], times[i]);
  }
  return true;
}

std::optional<core::ObservationStore> SnapshotReader::read_store() {
  core::ObservationStore store;
  if (!read_into(store)) return std::nullopt;
  return store;
}

}  // namespace scent::corpus
