// IndexArena: many interleaved lists in one chunk pool must replay each
// list's push order exactly, like the per-vector reference.
#include "container/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace scent::container {
namespace {

TEST(IndexArena, SingleListPushAndIterate) {
  IndexArena arena;
  IndexArena::List list;
  EXPECT_TRUE(arena.range(list).empty());

  // Cross several chunk boundaries (6 items per chunk).
  for (std::uint32_t i = 0; i < 100; ++i) arena.push_back(list, i * 11);
  EXPECT_EQ(arena.range(list).size(), 100u);

  std::uint32_t want = 0;
  for (const std::uint32_t v : arena.range(list)) {
    EXPECT_EQ(v, want * 11);
    ++want;
  }
  EXPECT_EQ(want, 100u);
}

TEST(IndexArena, InterleavedListsStayIndependent) {
  IndexArena arena;
  constexpr std::size_t kLists = 37;
  std::vector<IndexArena::List> lists(kLists);
  std::vector<std::vector<std::uint32_t>> ref(kLists);

  sim::Rng rng{0x42};
  for (std::uint32_t step = 0; step < 5000; ++step) {
    const auto which = static_cast<std::size_t>(rng.below(kLists));
    arena.push_back(lists[which], step);
    ref[which].push_back(step);
  }

  for (std::size_t i = 0; i < kLists; ++i) {
    ASSERT_EQ(arena.range(lists[i]).size(), ref[i].size());
    std::size_t at = 0;
    for (const std::uint32_t v : arena.range(lists[i])) {
      ASSERT_EQ(v, ref[i][at]) << "list " << i << " position " << at;
      ++at;
    }
    ASSERT_EQ(at, ref[i].size());
  }

  // Chunks are 32B; the pool must be within one chunk per list of optimal.
  const std::size_t optimal_chunks = (5000 + 5) / 6;
  EXPECT_LE(arena.chunk_count(), optimal_chunks + kLists);
  EXPECT_EQ(arena.memory_footprint() % 32, 0u);
}

TEST(IndexArena, ExactChunkBoundarySizes) {
  // Lists of size 5, 6, 7, 12, 13: the off-by-one cases around the 6-item
  // chunk capacity.
  IndexArena arena;
  for (const std::uint32_t n : {5u, 6u, 7u, 12u, 13u}) {
    IndexArena::List list;
    for (std::uint32_t i = 0; i < n; ++i) arena.push_back(list, 1000 + i);
    EXPECT_EQ(arena.range(list).size(), n);
    std::uint32_t count = 0;
    for (const std::uint32_t v : arena.range(list)) {
      EXPECT_EQ(v, 1000 + count);
      ++count;
    }
    EXPECT_EQ(count, n);
  }
}

}  // namespace
}  // namespace scent::container
