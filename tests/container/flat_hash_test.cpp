// Differential/property suite for the flat containers: every operation
// sequence must agree with the std::unordered_map/set reference, and
// iteration must be exactly first-insertion order (the invariant the
// engine's determinism contract leans on). Sequences deliberately cross
// rehash boundaries and include the O(n) erase path.
#include "container/flat_hash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netbase/ipv6_address.h"
#include "sim/rng.h"

namespace scent::container {
namespace {

/// Live keys in first-insertion order, recomputed after erasures.
template <typename Map>
void expect_iteration_matches(const Map& map,
                              const std::vector<std::uint64_t>& order) {
  std::size_t at = 0;
  for (const auto& [key, value] : map) {
    ASSERT_LT(at, order.size());
    EXPECT_EQ(key, order[at]) << "iteration position " << at;
    ++at;
  }
  EXPECT_EQ(at, order.size());
}

TEST(FlatMap, RandomizedDifferentialAgainstStdUnorderedMap) {
  for (const std::uint64_t seed : {0x1ULL, 0x2ULL, 0xFEEDULL}) {
    sim::Rng rng{seed};
    FlatMap<std::uint64_t, std::uint64_t> flat;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    std::vector<std::uint64_t> order;  // live keys, first-insertion order

    for (std::size_t step = 0; step < 3000; ++step) {
      // Dense key space so inserts repeatedly hit existing keys and erased
      // keys get re-inserted (exercising the post-rebuild probe paths).
      const std::uint64_t key = rng.below(512);
      const std::uint64_t op = rng.below(10);
      if (op < 5) {
        const std::uint64_t value = rng.next();
        const bool existed = ref.contains(key);
        flat[key] = value;
        ref[key] = value;
        if (!existed) order.push_back(key);
      } else if (op < 7) {
        const auto it = flat.find(key);
        const auto rit = ref.find(key);
        ASSERT_EQ(it != flat.end(), rit != ref.end()) << "key " << key;
        if (rit != ref.end()) {
          ASSERT_EQ(it->second, rit->second);
        }
        ASSERT_EQ(flat.contains(key), ref.contains(key));
      } else if (op == 7) {
        ASSERT_EQ(flat.erase(key), ref.erase(key) == 1) << "key " << key;
        order.erase(std::remove(order.begin(), order.end(), key),
                    order.end());
      } else {
        const auto [entry, inserted] = flat.try_emplace(key, step);
        const auto [rit, rinserted] = ref.try_emplace(key, step);
        ASSERT_EQ(inserted, rinserted);
        ASSERT_EQ(entry->second, rit->second);
        if (inserted) order.push_back(key);
      }
      ASSERT_EQ(flat.size(), ref.size());
      if (step % 97 == 0) {
        expect_iteration_matches(flat, order);
        for (const auto& [key2, value2] : ref) {
          const auto it = flat.find(key2);
          ASSERT_NE(it, flat.end());
          ASSERT_EQ(it->second, value2);
        }
      }
    }
    expect_iteration_matches(flat, order);
  }
}

TEST(FlatSet, RandomizedDifferentialAgainstStdUnorderedSet) {
  for (const std::uint64_t seed : {0x7ULL, 0xC0FFEEULL}) {
    sim::Rng rng{seed};
    FlatSet<std::uint64_t> flat;
    std::unordered_set<std::uint64_t> ref;
    std::vector<std::uint64_t> order;

    for (std::size_t step = 0; step < 3000; ++step) {
      const std::uint64_t key = rng.below(400);
      const std::uint64_t op = rng.below(10);
      if (op < 6) {
        const auto [it, inserted] = flat.insert(key);
        ASSERT_EQ(inserted, ref.insert(key).second);
        ASSERT_EQ(*it, key);
        if (inserted) order.push_back(key);
      } else if (op < 8) {
        ASSERT_EQ(flat.contains(key), ref.contains(key));
        ASSERT_EQ(flat.find(key) != flat.end(), ref.contains(key));
      } else {
        ASSERT_EQ(flat.erase(key), ref.erase(key) == 1);
        order.erase(std::remove(order.begin(), order.end(), key),
                    order.end());
      }
      ASSERT_EQ(flat.size(), ref.size());
      if (step % 101 == 0) {
        std::size_t at = 0;
        for (const std::uint64_t k : flat) {
          ASSERT_LT(at, order.size());
          ASSERT_EQ(k, order[at]);
          ++at;
        }
        ASSERT_EQ(at, order.size());
      }
    }
  }
}

TEST(FlatMap, SequentialInsertAcrossRehashBoundaries) {
  // Power-of-two growth: every boundary between 16 and 8192 buckets is
  // crossed; values must survive each rebuild.
  FlatMap<std::uint64_t, std::uint64_t> map;
  for (std::uint64_t i = 0; i < 6000; ++i) {
    map[i] = i * 3;
    // Probe around the sizes where the table grows (load factor 3/4 of a
    // power of two) — immediately before and after.
    if ((i & (i + 1)) == 0 || i % 191 == 0) {
      for (std::uint64_t k = 0; k <= i; k += 7) {
        const auto it = map.find(k);
        ASSERT_NE(it, map.end()) << "key " << k << " after " << i;
        ASSERT_EQ(it->second, k * 3);
      }
      ASSERT_FALSE(map.contains(i + 1));
    }
  }
  ASSERT_EQ(map.size(), 6000u);
  // Iteration is exactly insertion order.
  std::uint64_t want = 0;
  for (const auto& [key, value] : map) {
    ASSERT_EQ(key, want);
    ASSERT_EQ(value, want * 3);
    ++want;
  }
}

TEST(FlatMap, InsertionOrderSurvivesEraseAndReinsert) {
  FlatMap<std::uint64_t, int> map;
  for (std::uint64_t i = 0; i < 10; ++i) map[i] = 1;
  EXPECT_TRUE(map.erase(3));
  EXPECT_TRUE(map.erase(7));
  EXPECT_FALSE(map.erase(3));
  map[3] = 2;  // re-inserted keys go to the back
  const std::vector<std::uint64_t> want{0, 1, 2, 4, 5, 6, 8, 9, 3};
  expect_iteration_matches(map, want);
}

TEST(FlatMap, ClearKeepsCapacityAndReserveHolds) {
  FlatMap<std::uint64_t, std::uint64_t> map;
  map.reserve(1000);
  const std::size_t reserved = map.memory_footprint();
  for (std::uint64_t i = 0; i < 1000; ++i) map[i] = i;
  EXPECT_EQ(map.memory_footprint(), reserved) << "reserve() must pre-size";
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_FALSE(map.contains(5));
  EXPECT_EQ(map.memory_footprint(), reserved) << "clear() keeps storage";
  for (std::uint64_t i = 0; i < 1000; ++i) map[i] = i + 1;
  EXPECT_EQ(map.size(), 1000u);
  EXPECT_EQ(map.find(999)->second, 1000u);
}

TEST(FlatMap, NonTrivialKeyAndValueTypes) {
  // std::string keys (heap-owning, std::hash) and vector values that must
  // survive slot-vector growth via move.
  FlatMap<std::string, std::vector<int>> map;
  for (int i = 0; i < 300; ++i) {
    map["key-" + std::to_string(i)].push_back(i);
    map["key-" + std::to_string(i / 2)].push_back(-i);
  }
  ASSERT_EQ(map.size(), 300u);
  const auto it = map.find("key-10");
  ASSERT_NE(it, map.end());
  ASSERT_GE(it->second.size(), 1u);
  EXPECT_EQ(it->second.front(), 10);
  EXPECT_EQ(map.find("key-300"), map.end());
}

TEST(FlatSet, Ipv6AddressKeysWithCustomHash) {
  FlatSet<net::Ipv6Address, net::Ipv6AddressHash> set;
  std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> ref;
  sim::Rng rng{0xAB};
  for (int i = 0; i < 2000; ++i) {
    const net::Ipv6Address a{rng.below(64) << 32, rng.below(256)};
    ASSERT_EQ(set.insert(a).second, ref.insert(a).second);
  }
  ASSERT_EQ(set.size(), ref.size());
  for (const auto& a : ref) ASSERT_TRUE(set.contains(a));
}

TEST(FlatMap, TryEmplaceConstructsOnlyOnInsertion) {
  FlatMap<std::uint64_t, std::vector<int>> map;
  const auto [first, inserted] = map.try_emplace(1, std::vector<int>{1, 2});
  ASSERT_TRUE(inserted);
  ASSERT_EQ(first->second.size(), 2u);
  const auto [second, again] = map.try_emplace(1, std::vector<int>{9, 9, 9});
  EXPECT_FALSE(again);
  EXPECT_EQ(second->second.size(), 2u) << "existing value must be untouched";
}

TEST(DefaultHash, IntegralKeysAvalanche) {
  // Sequential integers must not map to sequential hashes (identity
  // hashing would cluster the probe table catastrophically).
  DefaultHash<std::uint64_t> hash;
  std::unordered_set<std::size_t> low_bits;
  for (std::uint64_t i = 0; i < 1024; ++i) {
    low_bits.insert(hash(i) & 0x3ff);
  }
  // With good mixing, 1024 keys into 1024 low-bit buckets land on well
  // over half the distinct values (identity would give exactly 1024 but
  // f(i)=c would give 1; sequential-with-stride pathologies give few).
  EXPECT_GT(low_bits.size(), 500u);
  EXPECT_NE(hash(1), 1u);
  EXPECT_NE(hash(2), hash(1) + 1);
}

}  // namespace
}  // namespace scent::container
