// Differential correctness for the partitioned join engine: the naive
// hash-join oracle (join/naive.h) defines the answer; the engine must
// reproduce it byte for byte across the full matrix of thread counts,
// partition fan-outs, spill modes and seeds — including one-side-only
// MACs, the same MAC surfacing behind multiple ASes, and partitions that
// end up empty. Suite names start with "Join" for the TSan leg.

#include "join/join.h"

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/observation.h"
#include "corpus/geo_feed.h"
#include "corpus/snapshot.h"
#include "join/naive.h"
#include "netbase/eui64.h"
#include "routing/bgp_table.h"
#include "sim/geo_feed.h"
#include "sim/rng.h"

namespace scent::join {
namespace {

constexpr std::uint64_t kFleetOui = 0x3810d5;
constexpr std::uint64_t kAlienOui = 0xf4f26d;
constexpr std::uint64_t kProviderA = 0x20010db8ULL << 32;
constexpr std::uint64_t kProviderB = 0x20014860ULL << 32;

struct TempDir {
  std::string path;
  explicit TempDir(const char* tag) {
    path = std::string{::testing::TempDir()} + "/scent_join_" + tag + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this));
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return path + "/" + name;
  }
};

routing::BgpTable make_bgp() {
  routing::BgpTable bgp;
  bgp.announce(routing::Advertisement{
      net::Prefix(net::Ipv6Address{kProviderA, 0}, 32), 65000, "DE", "A"});
  bgp.announce(routing::Advertisement{
      net::Prefix(net::Ipv6Address{kProviderB, 0}, 32), 65001, "DE", "B"});
  return bgp;
}

/// A randomized corpus world: `days` snapshot files whose devices draw
/// serials from a small pool (so MACs repeat across days), answer from
/// daily-rotated /64s, and sit behind either provider — some devices
/// behind both across the campaign (cross-AS duplicates). Roughly half
/// the serial pool overlaps the geo feed; the rest is corpus-only.
std::vector<CorpusDayFile> make_corpus(const TempDir& dir, std::uint64_t seed,
                                       std::int64_t days,
                                       std::size_t rows_per_day) {
  sim::Rng rng{seed};
  std::vector<CorpusDayFile> files;
  for (std::int64_t day = 0; day < days; ++day) {
    core::ObservationStore store;
    for (std::size_t i = 0; i < rows_per_day; ++i) {
      const std::uint64_t serial = rng.below(400);
      const std::uint64_t mac = (kFleetOui << 24) | serial;
      const std::uint64_t base = rng.chance(0.25) ? kProviderB : kProviderA;
      const std::uint64_t network =
          base | (sim::mix64(serial, static_cast<std::uint64_t>(day)) &
                  0xffffff) << 8;
      core::Observation obs;
      obs.target = net::Ipv6Address{network, 1};
      obs.response =
          net::Ipv6Address{network, net::mac_to_eui64(net::MacAddress{mac})};
      obs.type = wire::Icmpv6Type::kEchoReply;
      obs.code = 0;
      obs.time = static_cast<sim::TimePoint>(
          static_cast<std::uint64_t>(day) * 86400000000ULL + i);
      store.add(obs);
    }
    corpus::SnapshotWriter writer;
    writer.append(store);
    CorpusDayFile file;
    file.path = dir.file("day_" + std::to_string(day) + ".snap");
    file.day = day;
    EXPECT_TRUE(writer.write(file.path));
    files.push_back(file);
  }
  return files;
}

/// A feed overlapping serials [0, 200) of the fleet OUI (half the corpus
/// pool — the other half is corpus-only) plus an alien OUI the corpus
/// never saw (feed-only MACs).
std::string make_feed(const TempDir& dir, std::uint64_t seed,
                      std::size_t block_elements = 64) {
  sim::GeoFeedSpec spec;
  spec.seed = seed;
  spec.ouis = {static_cast<std::uint32_t>(kFleetOui),
               static_cast<std::uint32_t>(kAlienOui)};
  spec.devices_per_oui = 200;
  spec.first_day = 0;
  spec.last_day = 10;
  const sim::GeoFeedGenerator generator{spec};
  const std::string path = dir.file("feed_" + std::to_string(seed) + ".gfd");
  corpus::GeoFeedWriter writer{block_elements};
  EXPECT_TRUE(writer.open(path));
  for (std::uint64_t i = 0; i < generator.records(); ++i) {
    writer.append(generator.record(i));
  }
  EXPECT_TRUE(writer.finish());
  return path;
}

void expect_tables_equal(const analysis::DossierTable& got,
                         const analysis::DossierTable& want,
                         const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.rows()[i], want.rows()[i])
        << label << " first mismatch at dossier " << i << " mac "
        << got.rows()[i].mac.to_string();
  }
}

TEST(JoinDifferential, MatchesOracleAcrossThreadsPartitionsAndSpill) {
  const routing::BgpTable bgp = make_bgp();
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    TempDir dir{"matrix"};
    const auto corpus_files = make_corpus(dir, seed, 4, 600);
    const auto feed = make_feed(dir, seed);

    NaiveJoinInputs inputs;
    inputs.corpus_files = corpus_files;
    inputs.geo_feeds = {feed};
    inputs.bgp = &bgp;
    const auto oracle = naive_join(inputs);
    ASSERT_TRUE(oracle.has_value());
    ASSERT_GT(oracle->size(), 0u);

    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      for (const unsigned partitions : {1u, 4u, 16u}) {
        for (const bool spill : {false, true}) {
          JoinOptions options;
          options.threads = threads;
          options.oversubscribe = true;  // real shards on any-core CI hosts
          options.partitions = partitions;
          if (spill) {
            options.spill_dir = dir.file(
                "spill_t" + std::to_string(threads) + "_p" +
                std::to_string(partitions));
            options.spill_block_elements = 32;
          }
          options.bgp = &bgp;
          DossierJoin engine{options};
          for (const CorpusDayFile& file : corpus_files) {
            engine.add_corpus_day(file.path, file.day);
          }
          engine.add_geo_feed(feed);
          const auto table = engine.run_table();
          const std::string label =
              "seed=" + std::to_string(seed) +
              " threads=" + std::to_string(threads) +
              " partitions=" + std::to_string(partitions) +
              (spill ? " spill" : " memory");
          ASSERT_TRUE(table.has_value()) << label;
          expect_tables_equal(*table, *oracle, label);
          EXPECT_EQ(engine.stats().dossiers, oracle->size()) << label;
        }
      }
    }
  }
}

TEST(JoinDifferential, DayWindowPrunesFilesAndMatchesOracle) {
  const routing::BgpTable bgp = make_bgp();
  TempDir dir{"window"};
  const auto corpus_files = make_corpus(dir, 5, 6, 300);
  const auto feed = make_feed(dir, 5);

  DayWindow window;
  window.first_day = 2;
  window.last_day = 4;

  NaiveJoinInputs inputs;
  inputs.corpus_files = corpus_files;
  inputs.geo_feeds = {feed};
  inputs.window = window;
  inputs.bgp = &bgp;
  const auto oracle = naive_join(inputs);
  ASSERT_TRUE(oracle.has_value());

  JoinOptions options;
  options.threads = 4;
  options.oversubscribe = true;
  options.partitions = 4;
  options.spill_dir = dir.file("spill");
  options.window = window;
  options.bgp = &bgp;
  DossierJoin engine{options};
  for (const CorpusDayFile& file : corpus_files) {
    engine.add_corpus_day(file.path, file.day);
  }
  engine.add_geo_feed(feed);
  const auto table = engine.run_table();
  ASSERT_TRUE(table.has_value());
  expect_tables_equal(*table, *oracle, "window");
  EXPECT_EQ(engine.stats().corpus_files_pruned, 3u);  // days 0, 1, 5
  for (const analysis::DeviceDossier& d : table->rows()) {
    for (const analysis::DossierSighting& s : d.sightings) {
      EXPECT_GE(s.day, 2);
      EXPECT_LE(s.day, 4);
    }
  }
}

TEST(JoinDifferential, DisjointFeedBlocksArePruned) {
  // Small spill blocks + an alien OUI band sorted after the fleet band:
  // the merge phase must skip the alien blocks by stats alone, and still
  // match the oracle exactly.
  const routing::BgpTable bgp = make_bgp();
  TempDir dir{"prune"};
  const auto corpus_files = make_corpus(dir, 7, 3, 400);
  const auto feed = make_feed(dir, 7, 32);

  NaiveJoinInputs inputs;
  inputs.corpus_files = corpus_files;
  inputs.geo_feeds = {feed};
  inputs.bgp = &bgp;
  const auto oracle = naive_join(inputs);
  ASSERT_TRUE(oracle.has_value());

  JoinOptions options;
  options.threads = 2;
  options.oversubscribe = true;
  options.partitions = 4;
  options.spill_dir = dir.file("spill");
  options.spill_block_elements = 16;
  options.bgp = &bgp;
  DossierJoin engine{options};
  for (const CorpusDayFile& file : corpus_files) {
    engine.add_corpus_day(file.path, file.day);
  }
  engine.add_geo_feed(feed);
  const auto table = engine.run_table();
  ASSERT_TRUE(table.has_value());
  expect_tables_equal(*table, *oracle, "prune");
  EXPECT_GT(engine.stats().blocks_pruned, 0u);
  EXPECT_GT(engine.stats().spill_bytes, 0u);
  EXPECT_GT(engine.stats().spill_runs, 0u);
}

TEST(JoinDifferential, MorePartitionsThanMacsLeavesEmptyPartitions) {
  const routing::BgpTable bgp = make_bgp();
  TempDir dir{"sparse"};
  // Two devices, 64 partitions: most partitions hold nothing.
  core::ObservationStore store;
  for (const std::uint64_t serial : {1ULL, 2ULL}) {
    const std::uint64_t network = kProviderA | (serial << 16);
    core::Observation obs;
    obs.target = net::Ipv6Address{network, 1};
    obs.response = net::Ipv6Address{
        network,
        net::mac_to_eui64(net::MacAddress{(kFleetOui << 24) | serial})};
    obs.type = wire::Icmpv6Type::kEchoReply;
    obs.code = 0;
    obs.time = static_cast<sim::TimePoint>(serial);
    store.add(obs);
  }
  corpus::SnapshotWriter writer;
  writer.append(store);
  const std::string snap = dir.file("day0.snap");
  ASSERT_TRUE(writer.write(snap));
  const auto feed = make_feed(dir, 11);

  NaiveJoinInputs inputs;
  inputs.corpus_files = {{snap, 0}};
  inputs.geo_feeds = {feed};
  inputs.bgp = &bgp;
  const auto oracle = naive_join(inputs);
  ASSERT_TRUE(oracle.has_value());
  ASSERT_EQ(oracle->size(), 2u);

  for (const bool spill : {false, true}) {
    JoinOptions options;
    options.threads = 8;
    options.oversubscribe = true;
    options.partitions = 64;
    if (spill) options.spill_dir = dir.file("spill");
    options.bgp = &bgp;
    DossierJoin engine{options};
    engine.add_corpus_day(snap, 0);
    engine.add_geo_feed(feed);
    const auto table = engine.run_table();
    ASSERT_TRUE(table.has_value());
    expect_tables_equal(*table, *oracle, spill ? "sparse-spill" : "sparse");
  }
}

TEST(JoinDifferential, EmptyInputsYieldEmptyTable) {
  TempDir dir{"empty"};
  // Feed-only world: no corpus files registered at all.
  const auto feed = make_feed(dir, 13);
  JoinOptions options;
  options.partitions = 8;
  options.spill_dir = dir.file("spill");
  DossierJoin engine{options};
  engine.add_geo_feed(feed);
  const auto table = engine.run_table();
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->size(), 0u);
  EXPECT_GT(engine.stats().geo_rows, 0u);

  // And a fully empty join.
  DossierJoin nothing{JoinOptions{}};
  const auto empty = nothing.run_table();
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(empty->size(), 0u);
}

TEST(JoinDifferential, RunIsSingleShot) {
  DossierJoin engine{JoinOptions{}};
  ASSERT_TRUE(engine.run_table().has_value());
  analysis::DossierTable table;
  EXPECT_FALSE(engine.run(table));
}

}  // namespace
}  // namespace scent::join
