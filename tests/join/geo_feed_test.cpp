// Tests for the geolocation feed: the deterministic generator
// (sim/geo_feed.h), its block-compressed on-disk format
// (corpus/geo_feed.h), and the dossier layer (analysis/dossier.h) both
// join implementations share.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/dossier.h"
#include "corpus/geo_feed.h"
#include "oui/oui_registry.h"
#include "sim/geo_feed.h"

namespace scent {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const char* tag) {
    path = std::string{::testing::TempDir()} + "/scent_geo_" + tag + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".gfd";
  }
  ~TempFile() { std::remove(path.c_str()); }
};

sim::GeoFeedSpec small_spec() {
  sim::GeoFeedSpec spec;
  spec.seed = 99;
  spec.ouis = {0x3810d5, 0x00259e};
  spec.devices_per_oui = 500;
  spec.first_day = 3;
  spec.last_day = 17;
  return spec;
}

TEST(JoinGeoGenerator, DeterministicAndMacAscending) {
  const sim::GeoFeedGenerator a{small_spec()};
  const sim::GeoFeedGenerator b{small_spec()};
  ASSERT_EQ(a.records(), 1000u);
  const auto rows_a = a.generate();
  const auto rows_b = b.generate();
  EXPECT_EQ(rows_a, rows_b);
  for (std::size_t i = 1; i < rows_a.size(); ++i) {
    EXPECT_LT(rows_a[i - 1].mac.bits(), rows_a[i].mac.bits());
  }
  for (const sim::GeoRecord& r : rows_a) {
    EXPECT_GE(r.lat_udeg, -90000000);
    EXPECT_LE(r.lat_udeg, 90000000);
    EXPECT_GE(r.lon_udeg, -180050000);
    EXPECT_LE(r.lon_udeg, 180050000);
    EXPECT_GE(r.asn, small_spec().base_asn);
    EXPECT_LT(r.asn, small_spec().base_asn + small_spec().asn_count);
    EXPECT_GE(r.last_day, 3);
    EXPECT_LE(r.last_day, 17);
  }
}

TEST(JoinGeoFeed, RoundTripAcrossBlocks) {
  const sim::GeoFeedGenerator generator{small_spec()};
  const auto rows = generator.generate();
  TempFile file{"roundtrip"};
  {
    corpus::GeoFeedWriter writer{64};
    ASSERT_TRUE(writer.open(file.path));
    for (const sim::GeoRecord& r : rows) writer.append(r);
    ASSERT_TRUE(writer.finish());
  }
  corpus::GeoFeedReader reader;
  ASSERT_TRUE(reader.open(file.path));
  EXPECT_EQ(reader.records(), rows.size());
  EXPECT_EQ(reader.blocks(), (rows.size() + 63) / 64);
  const auto range = reader.mac_range();
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->first, rows.front().mac.bits());
  EXPECT_EQ(range->second, rows.back().mac.bits());

  std::vector<sim::GeoRecord> got;
  ASSERT_TRUE(reader.for_each(
      [&](const sim::GeoRecord& r) { got.push_back(r); }));
  EXPECT_EQ(got, rows);
}

TEST(JoinGeoFeed, BlockRangeSlicesCoverExactly) {
  const sim::GeoFeedGenerator generator{small_spec()};
  const auto rows = generator.generate();
  TempFile file{"slices"};
  {
    corpus::GeoFeedWriter writer{64};
    ASSERT_TRUE(writer.open(file.path));
    for (const sim::GeoRecord& r : rows) writer.append(r);
    ASSERT_TRUE(writer.finish());
  }
  corpus::GeoFeedReader reader;
  ASSERT_TRUE(reader.open(file.path));
  // Three disjoint block windows reassemble the whole feed in order — the
  // sharded partition scan's contract.
  std::vector<sim::GeoRecord> got;
  const std::size_t blocks = reader.blocks();
  ASSERT_TRUE(reader.for_each_block_range(
      0, 3, [&](const sim::GeoRecord& r) { got.push_back(r); }));
  ASSERT_TRUE(reader.for_each_block_range(
      3, 5, [&](const sim::GeoRecord& r) { got.push_back(r); }));
  ASSERT_TRUE(reader.for_each_block_range(
      8, blocks - 8, [&](const sim::GeoRecord& r) { got.push_back(r); }));
  EXPECT_EQ(got, rows);
}

TEST(JoinGeoFeed, WindowScanSkipsDisjointBlocks) {
  // Two OUIs = two well-separated MAC bands. A window over the first band
  // must skip every second-band block unread.
  const sim::GeoFeedGenerator generator{small_spec()};
  const auto rows = generator.generate();
  TempFile file{"window"};
  {
    corpus::GeoFeedWriter writer{64};
    ASSERT_TRUE(writer.open(file.path));
    for (const sim::GeoRecord& r : rows) writer.append(r);
    ASSERT_TRUE(writer.finish());
  }
  corpus::GeoFeedReader reader;
  ASSERT_TRUE(reader.open(file.path));
  const std::uint64_t lo = 0x3810d5ULL << 24;
  const std::uint64_t hi = (0x3810d5ULL << 24) | 0xffffff;
  std::vector<sim::GeoRecord> got;
  ASSERT_TRUE(reader.for_each_overlapping(
      lo, hi, [&](const sim::GeoRecord& r) { got.push_back(r); }));
  ASSERT_EQ(got.size(), 500u);
  for (const sim::GeoRecord& r : got) {
    EXPECT_EQ(r.mac.oui().value(), 0x3810d5u);
  }
  EXPECT_GT(reader.blocks_skipped(), 0u);
  EXPECT_EQ(reader.blocks_read() + reader.blocks_skipped(), reader.blocks());
}

TEST(JoinGeoFeed, OutOfOrderAppendRejected) {
  const sim::GeoFeedGenerator generator{small_spec()};
  const auto rows = generator.generate();
  TempFile file{"unsorted"};
  corpus::GeoFeedWriter writer{64};
  ASSERT_TRUE(writer.open(file.path));
  writer.append(rows[1]);
  writer.append(rows[0]);  // violates the sorted contract
  EXPECT_FALSE(writer.finish());
}

TEST(JoinDossier, MakeDossierCanonicalizesOrderAndDuplicates) {
  const net::MacAddress mac{0x3810d5000042ULL};
  const std::vector<corpus::KeyedRecord> corpus_rows = {
      {.key = mac.bits(), .c0 = 0xb0, .c1 = 65001, .c2 = 5},
      {.key = mac.bits(), .c0 = 0xa0, .c1 = 65000, .c2 = 2},
      {.key = mac.bits(), .c0 = 0xb0, .c1 = 65001, .c2 = 5},  // exact dup
  };
  const std::vector<corpus::KeyedRecord> geo_rows = {
      {.key = mac.bits(),
       .c0 = analysis::pack_latlon(52520000, 13400000),
       .c1 = 64500,
       .c2 = 9},
      {.key = mac.bits(),
       .c0 = analysis::pack_latlon(-33870000, 151210000),
       .c1 = 64501,
       .c2 = 1},
  };
  const auto forward = analysis::make_dossier(mac, corpus_rows, geo_rows);
  const std::vector<corpus::KeyedRecord> corpus_reversed(corpus_rows.rbegin(),
                                                         corpus_rows.rend());
  const std::vector<corpus::KeyedRecord> geo_reversed(geo_rows.rbegin(),
                                                      geo_rows.rend());
  const auto backward = analysis::make_dossier(mac, corpus_reversed,
                                               geo_reversed);
  EXPECT_EQ(forward, backward);

  ASSERT_EQ(forward.sightings.size(), 2u);  // dup collapsed
  EXPECT_EQ(forward.sightings[0].day, 2);
  EXPECT_EQ(forward.sightings[1].day, 5);
  ASSERT_EQ(forward.anchors.size(), 2u);
  EXPECT_EQ(forward.anchors[0].day, 1);
  EXPECT_EQ(forward.anchors[0].lat_udeg, -33870000);
  EXPECT_EQ(forward.anchors[1].lon_udeg, 13400000);
}

TEST(JoinDossier, DerivedReports) {
  analysis::DossierTable table;
  // Device A: two providers, switch on day 4, anchored.
  analysis::DeviceDossier a;
  a.mac = net::MacAddress{0x3810d5000001ULL};
  a.sightings = {{.day = 1, .network = 0x10, .asn = 65000},
                 {.day = 4, .network = 0x20, .asn = 65001},
                 {.day = 6, .network = 0x30, .asn = 65001}};
  a.anchors = {{.day = 2, .lat_udeg = 1, .lon_udeg = 2, .asn = 64500}};
  table.on_dossier(a);
  // Device B: one provider, no anchor.
  analysis::DeviceDossier b;
  b.mac = net::MacAddress{0x3810d5000002ULL};
  b.sightings = {{.day = 1, .network = 0x40, .asn = 65000}};
  table.on_dossier(b);

  const auto reuse = analysis::cross_as_mac_reuse(table);
  ASSERT_EQ(reuse.size(), 1u);
  EXPECT_EQ(reuse[0].mac, a.mac);
  EXPECT_EQ(reuse[0].asns, (std::vector<std::uint32_t>{65000, 65001}));
  EXPECT_EQ(reuse[0].first_day, 1);
  EXPECT_EQ(reuse[0].last_day, 6);

  const auto switches = analysis::provider_switch_timeline(table);
  ASSERT_EQ(switches.size(), 1u);
  EXPECT_EQ(switches[0].from_asn, 65000u);
  EXPECT_EQ(switches[0].to_asn, 65001u);
  EXPECT_EQ(switches[0].day, 4);

  EXPECT_DOUBLE_EQ(analysis::anchored_fraction(table), 0.5);

  const auto census =
      analysis::dossier_vendor_census(table, oui::builtin_registry());
  ASSERT_EQ(census.size(), 1u);
  EXPECT_EQ(census[0].first, "AVM GmbH");
  EXPECT_EQ(census[0].second, 2u);
}

}  // namespace
}  // namespace scent
