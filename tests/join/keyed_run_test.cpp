// Tests for the MAC-keyed spill-run format (corpus/keyed_run.h): roundtrip
// fidelity, trailer-directory validation, block-stat skipping, and the
// corrupt-input hard line. Suite names start with "Join" so the TSan leg of
// scripts/check.sh picks them up via `ctest -R '^(Engine|Pipeline|Serve|Join)'`.

#include "corpus/keyed_run.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace scent::corpus {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const char* tag) {
    path = std::string{::testing::TempDir()} + "/scent_krun_" + tag + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".krun";
  }
  ~TempFile() { std::remove(path.c_str()); }
};

std::vector<KeyedRecord> sample_records(std::size_t count,
                                        std::uint64_t seed) {
  sim::Rng rng{seed};
  std::vector<KeyedRecord> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    records.push_back(KeyedRecord{.key = rng.next(),
                                  .c0 = rng.next(),
                                  .c1 = rng.below(1 << 20),
                                  .c2 = rng.below(365)});
  }
  return records;
}

void write_records(const std::string& path,
                   const std::vector<KeyedRecord>& records,
                   std::size_t block_elements) {
  KeyedRunWriter writer{block_elements};
  ASSERT_TRUE(writer.open(path));
  for (const KeyedRecord& r : records) writer.append(r);
  ASSERT_TRUE(writer.finish());
}

TEST(JoinKeyedRun, RoundTripAcrossBlocks) {
  const auto records = sample_records(1000, 42);
  TempFile file{"roundtrip"};
  write_records(file.path, records, 64);

  KeyedRunReader reader;
  ASSERT_TRUE(reader.open(file.path));
  EXPECT_EQ(reader.records(), records.size());
  EXPECT_EQ(reader.blocks(), (records.size() + 63) / 64);

  std::vector<KeyedRecord> got;
  ASSERT_TRUE(reader.for_each(
      [&](const KeyedRecord& r) { got.push_back(r); }));
  EXPECT_EQ(got, records);
  EXPECT_EQ(reader.blocks_read(), reader.blocks());
  EXPECT_EQ(reader.blocks_skipped(), 0u);
}

TEST(JoinKeyedRun, KeyRangeMatchesContents) {
  const auto records = sample_records(300, 7);
  std::uint64_t lo = records.front().key;
  std::uint64_t hi = records.front().key;
  for (const KeyedRecord& r : records) {
    lo = std::min(lo, r.key);
    hi = std::max(hi, r.key);
  }
  TempFile file{"range"};
  write_records(file.path, records, 32);

  KeyedRunReader reader;
  ASSERT_TRUE(reader.open(file.path));
  const auto range = reader.key_range();
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->first, lo);
  EXPECT_EQ(range->second, hi);
}

TEST(JoinKeyedRun, WindowScanSkipsDisjointBlocks) {
  // Ascending keys 0..999 in 16-element blocks: a window of [100, 199]
  // touches at most 8 of the 63 blocks; the rest must never be read.
  std::vector<KeyedRecord> records;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    records.push_back(KeyedRecord{.key = i, .c0 = i * 3, .c1 = 0, .c2 = i});
  }
  TempFile file{"window"};
  write_records(file.path, records, 16);

  KeyedRunReader reader;
  ASSERT_TRUE(reader.open(file.path));
  std::vector<KeyedRecord> got;
  ASSERT_TRUE(reader.for_each_overlapping(
      100, 199, [&](const KeyedRecord& r) { got.push_back(r); }));
  ASSERT_EQ(got.size(), 100u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, 100 + i);
  }
  EXPECT_GT(reader.blocks_skipped(), 0u);
  EXPECT_LE(reader.blocks_read(), 8u);
  EXPECT_EQ(reader.blocks_read() + reader.blocks_skipped(), reader.blocks());
}

TEST(JoinKeyedRun, EmptyRunRoundTrips) {
  TempFile file{"empty"};
  {
    KeyedRunWriter writer;
    ASSERT_TRUE(writer.open(file.path));
    ASSERT_TRUE(writer.finish());
  }
  KeyedRunReader reader;
  ASSERT_TRUE(reader.open(file.path));
  EXPECT_EQ(reader.records(), 0u);
  EXPECT_EQ(reader.blocks(), 0u);
  EXPECT_FALSE(reader.key_range().has_value());
  std::size_t seen = 0;
  ASSERT_TRUE(reader.for_each([&](const KeyedRecord&) { ++seen; }));
  EXPECT_EQ(seen, 0u);
}

TEST(JoinKeyedRun, CorruptPayloadFailsRead) {
  const auto records = sample_records(200, 9);
  TempFile file{"corrupt"};
  write_records(file.path, records, 32);

  // Flip one payload byte (just past the 16-byte header): open still
  // succeeds — the directory is intact — but the block read must fail its
  // CRC, never return wrong records.
  std::FILE* f = std::fopen(file.path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 40, SEEK_SET), 0);
  int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(f, 40, SEEK_SET), 0);
  std::fputc(byte ^ 0xff, f);
  std::fclose(f);

  KeyedRunReader reader;
  ASSERT_TRUE(reader.open(file.path));
  EXPECT_FALSE(reader.for_each([](const KeyedRecord&) {}));
}

TEST(JoinKeyedRun, TruncatedFileFailsOpen) {
  const auto records = sample_records(200, 11);
  TempFile file{"truncated"};
  write_records(file.path, records, 32);

  std::FILE* f = std::fopen(file.path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(file.path.c_str(), size - 10), 0);

  KeyedRunReader reader;
  EXPECT_FALSE(reader.open(file.path));
}

TEST(JoinKeyedRun, BadMagicFailsOpen) {
  TempFile file{"magic"};
  std::FILE* f = std::fopen(file.path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTAKRUNXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXX", f);
  std::fclose(f);
  KeyedRunReader reader;
  EXPECT_FALSE(reader.open(file.path));
}

}  // namespace
}  // namespace scent::corpus
