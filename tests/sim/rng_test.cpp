// Tests for deterministic randomness: SplitMix64 and the Feistel bijection.
#include "sim/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace scent::sim {
namespace {

TEST(Mix64, IsDeterministic) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_EQ(mix64(1, 2), mix64(1, 2));
  EXPECT_EQ(mix64(1, 2, 3), mix64(1, 2, 3));
}

TEST(Mix64, DistinguishesInputs) {
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(1, 2, 3), mix64(1, 3, 2));
  EXPECT_NE(mix64(0), mix64(0, 0));
}

TEST(Rng, SameSeedSameSequence) {
  Rng a{7};
  Rng b{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{7};
  Rng b{8};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng{123};
  for (const std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound) << "bound " << bound;
    }
  }
}

TEST(Rng, BelowCoversSmallRangeUniformly) {
  Rng rng{99};
  std::vector<int> counts(8, 0);
  constexpr int kTrials = 8000;
  for (int i = 0; i < kTrials; ++i) ++counts[rng.below(8)];
  for (const int c : counts) {
    EXPECT_GT(c, kTrials / 8 / 2);
    EXPECT_LT(c, kTrials / 8 * 2);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{5};
  double sum = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kTrials, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng{11};
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.25, 0.02);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng parent1{3};
  Rng parent2{3};
  Rng child1 = parent1.fork(9);
  Rng child2 = parent2.fork(9);
  EXPECT_EQ(child1.next(), child2.next());
  // Different salt yields a different stream.
  Rng parent3{3};
  Rng child3 = parent3.fork(10);
  EXPECT_NE(child1.next(), child3.next());
}

// ---- FeistelPermutation ----------------------------------------------------

TEST(Feistel, IsBijectionOnExactPowerOfFourDomain) {
  const FeistelPermutation perm{256, 42};
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 256; ++i) {
    const std::uint64_t y = perm.forward(i);
    EXPECT_LT(y, 256u);
    seen.insert(y);
  }
  EXPECT_EQ(seen.size(), 256u);
}

TEST(Feistel, IsBijectionOnAwkwardDomain) {
  // 1000 is not a power of two: exercises cycle-walking.
  const FeistelPermutation perm{1000, 7};
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t y = perm.forward(i);
    EXPECT_LT(y, 1000u);
    seen.insert(y);
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Feistel, InverseUndoesForward) {
  const FeistelPermutation perm{12345, 99};
  for (std::uint64_t i = 0; i < 12345; i += 37) {
    EXPECT_EQ(perm.inverse(perm.forward(i)), i);
    EXPECT_EQ(perm.forward(perm.inverse(i)), i);
  }
}

TEST(Feistel, KeyChangesPermutation) {
  const FeistelPermutation a{4096, 1};
  const FeistelPermutation b{4096, 2};
  int same = 0;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    if (a.forward(i) == b.forward(i)) ++same;
  }
  // Two random permutations of n elements agree in ~1 position.
  EXPECT_LT(same, 24);
}

TEST(Feistel, SizeOneDomain) {
  const FeistelPermutation perm{1, 5};
  EXPECT_EQ(perm.forward(0), 0u);
  EXPECT_EQ(perm.inverse(0), 0u);
}

TEST(Feistel, ActuallyScrambles) {
  const FeistelPermutation perm{1 << 20, 1234};
  // Not the identity, and not a simple shift: count fixed points and check
  // consecutive inputs do not map to consecutive outputs.
  int fixed = 0;
  int consecutive = 0;
  std::uint64_t prev = perm.forward(0);
  for (std::uint64_t i = 1; i < 4096; ++i) {
    const std::uint64_t y = perm.forward(i);
    if (y == i) ++fixed;
    if (y == prev + 1) ++consecutive;
    prev = y;
  }
  EXPECT_LT(fixed, 4);
  EXPECT_LT(consecutive, 4);
}

/// Property: bijection holds across domain sizes.
class FeistelDomains : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FeistelDomains, BijectionAndInverse) {
  const std::uint64_t n = GetParam();
  const FeistelPermutation perm{n, 0xfeedface};
  std::set<std::uint64_t> seen;
  const std::uint64_t step = n < 2048 ? 1 : n / 1024;
  for (std::uint64_t i = 0; i < n; i += step) {
    const std::uint64_t y = perm.forward(i);
    ASSERT_LT(y, n);
    EXPECT_EQ(perm.inverse(y), i);
    if (n < 2048) seen.insert(y);
  }
  if (n < 2048) {
    EXPECT_EQ(seen.size(), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FeistelDomains,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 5ULL, 16ULL,
                                           17ULL, 100ULL, 255ULL, 256ULL,
                                           257ULL, 1024ULL, 1ULL << 18,
                                           (1ULL << 18) - 1, 1ULL << 24));

}  // namespace
}  // namespace scent::sim
