// Tests for virtual time and the rotation schedule.
#include <gtest/gtest.h>

#include <set>

#include "sim/rotation.h"
#include "sim/sim_time.h"

namespace scent::sim {
namespace {

TEST(SimTime, UnitArithmetic) {
  EXPECT_EQ(kSecond, 1000000);
  EXPECT_EQ(days(2), 2 * 24 * 3600 * kSecond);
  EXPECT_EQ(hours(3), 3 * 3600 * kSecond);
  EXPECT_EQ(minutes(90), hours(1) + minutes(30));
}

TEST(SimTime, DayOfAndTimeOfDay) {
  EXPECT_EQ(day_of(0), 0);
  EXPECT_EQ(day_of(kDay - 1), 0);
  EXPECT_EQ(day_of(kDay), 1);
  EXPECT_EQ(day_of(days(44) + hours(6)), 44);
  EXPECT_EQ(time_of_day(days(3) + hours(7) + minutes(5)),
            hours(7) + minutes(5));
}

TEST(SimTime, FormatTime) {
  EXPECT_EQ(format_time(0), "d0 00:00:00");
  EXPECT_EQ(format_time(days(3) + hours(7) + minutes(15) + 42 * kSecond),
            "d3 07:15:42");
}

TEST(VirtualClock, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(100);
  EXPECT_EQ(clock.now(), 100);
  clock.advance_to(50);  // never goes backwards
  EXPECT_EQ(clock.now(), 100);
  clock.advance_to(5000);
  EXPECT_EQ(clock.now(), 5000);
}

// ---- RotationSchedule ------------------------------------------------------

RotationPolicy stride_policy(std::uint64_t stride, Duration period = kDay) {
  RotationPolicy p;
  p.kind = RotationPolicy::Kind::kStride;
  p.period = period;
  p.window_start = 0;
  p.window_length = hours(6);
  p.stride = stride;
  return p;
}

TEST(RotationSchedule, StaticNeverRotates) {
  RotationPolicy p;  // kStatic
  const RotationSchedule sched{p, 1024, 1};
  EXPECT_EQ(sched.epochs_elapsed(5, days(100)), 0u);
  EXPECT_EQ(sched.slot_at(17, 0), 17u);
  EXPECT_EQ(sched.slot_at(17, 99), 17u);  // epoch ignored
}

TEST(RotationSchedule, EpochZeroBeforeFirstWindow) {
  const RotationSchedule sched{stride_policy(1), 1024, 1};
  EXPECT_EQ(sched.epochs_elapsed(5, 0), 0u);
  EXPECT_EQ(sched.epochs_elapsed(5, kDay - 1), 0u);
}

TEST(RotationSchedule, EpochAdvancesWithinWindow) {
  const RotationSchedule sched{stride_policy(1), 1024, 1};
  // By the end of day 1's window every device has rotated once.
  EXPECT_EQ(sched.epochs_elapsed(5, kDay + hours(6)), 1u);
  // Before the window opens on day 1, no device has.
  EXPECT_EQ(sched.epochs_elapsed(5, kDay - 1), 0u);
}

TEST(RotationSchedule, EpochCountsAccumulateDaily) {
  const RotationSchedule sched{stride_policy(1), 1024, 1};
  for (std::int64_t day = 1; day <= 30; ++day) {
    EXPECT_EQ(sched.epochs_elapsed(5, days(day) + hours(7)),
              static_cast<std::uint64_t>(day))
        << "day " << day;
  }
}

TEST(RotationSchedule, JitterSpreadsDevicesAcrossWindow) {
  const RotationSchedule sched{stride_policy(1), 1024, 42};
  // Mid-window, some devices have rotated and some have not.
  const TimePoint mid_window = kDay + hours(3);
  int rotated = 0;
  constexpr int kDevices = 200;
  for (std::uint64_t d = 0; d < kDevices; ++d) {
    if (sched.epochs_elapsed(d, mid_window) == 1) ++rotated;
  }
  EXPECT_GT(rotated, kDevices / 5);
  EXPECT_LT(rotated, kDevices * 4 / 5);
}

TEST(RotationSchedule, RotationInstantWithinWindow) {
  const RotationSchedule sched{stride_policy(1), 1024, 7};
  for (std::uint64_t d = 0; d < 50; ++d) {
    const TimePoint instant = sched.rotation_instant(d, 3);
    EXPECT_GE(instant, days(3));
    EXPECT_LT(instant, days(3) + hours(6));
  }
}

TEST(RotationSchedule, StrideSlotMath) {
  const RotationSchedule sched{stride_policy(236), 1024, 1};
  EXPECT_EQ(sched.slot_at(0, 0), 0u);
  EXPECT_EQ(sched.slot_at(0, 1), 236u);
  EXPECT_EQ(sched.slot_at(0, 5), (5 * 236) % 1024);
  EXPECT_EQ(sched.slot_at(1000, 1), (1000 + 236) % 1024);
}

TEST(RotationSchedule, StrideInverseRoundTrips) {
  const RotationSchedule sched{stride_policy(236), 1024, 1};
  for (const std::uint64_t epoch : {0ULL, 1ULL, 7ULL, 100ULL, 12345ULL}) {
    for (const std::uint64_t slot : {0ULL, 1ULL, 511ULL, 1023ULL}) {
      EXPECT_EQ(sched.slot_at(sched.initial_of(slot, epoch), epoch), slot);
    }
  }
}

TEST(RotationSchedule, ShuffleIsBijectivePerEpoch) {
  RotationPolicy p;
  p.kind = RotationPolicy::Kind::kShuffle;
  p.period = kDay;
  p.window_length = hours(6);
  const RotationSchedule sched{p, 256, 9};

  for (const std::uint64_t epoch : {1ULL, 2ULL, 17ULL}) {
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 256; ++i) {
      const std::uint64_t s = sched.slot_at(i, epoch);
      EXPECT_LT(s, 256u);
      EXPECT_EQ(sched.initial_of(s, epoch), i);
      seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 256u);
  }
}

TEST(RotationSchedule, ShuffleEpochsDiffer) {
  RotationPolicy p;
  p.kind = RotationPolicy::Kind::kShuffle;
  const RotationSchedule sched{p, 4096, 9};
  int same = 0;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    if (sched.slot_at(i, 1) == sched.slot_at(i, 2)) ++same;
  }
  EXPECT_LT(same, 24);
}

TEST(RotationSchedule, MaxEpochsBoundsAllDevices) {
  const RotationSchedule sched{stride_policy(3), 1024, 11};
  for (const TimePoint t : {TimePoint{0}, kDay - 1, kDay + hours(2),
                            days(10) + hours(5), days(44)}) {
    const std::uint64_t bound = sched.max_epochs(t);
    for (std::uint64_t d = 0; d < 64; ++d) {
      EXPECT_LE(sched.epochs_elapsed(d, t), bound);
      EXPECT_GE(sched.epochs_elapsed(d, t) + 1, bound);
    }
  }
}

TEST(RotationSchedule, LongerPeriodRotatesSlower) {
  const RotationSchedule sched{stride_policy(1, days(3)), 1024, 1};
  EXPECT_EQ(sched.epochs_elapsed(5, days(2)), 0u);
  EXPECT_EQ(sched.epochs_elapsed(5, days(3) + hours(6)), 1u);
  EXPECT_EQ(sched.epochs_elapsed(5, days(9) + hours(6)), 3u);
}

}  // namespace
}  // namespace scent::sim
