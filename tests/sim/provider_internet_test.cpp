// Tests for Provider probe handling and Internet routing/delivery.
#include <gtest/gtest.h>

#include "sim/internet.h"
#include "sim/provider.h"

namespace scent::sim {
namespace {

net::Prefix pfx(const char* text) { return *net::Prefix::parse(text); }
net::Ipv6Address addr(const char* text) {
  return *net::Ipv6Address::parse(text);
}

/// One provider, one /46 pool with /56 allocations, one EUI-64 device in
/// slot 0 with the requested error behavior.
struct Fixture {
  Internet internet;
  std::size_t provider_index;
  net::MacAddress mac{0x3810d5aabbccULL};

  explicit Fixture(ErrorBehavior behavior = ErrorBehavior::kAdminProhibited,
                   RotationPolicy::Kind kind = RotationPolicy::Kind::kStatic,
                   double loss = 0.0, RateLimit limit = {10000.0, 10000.0}) {
    ProviderConfig config;
    config.asn = 8881;
    config.name = "Versatel";
    config.country = "DE";
    config.advertisements = {pfx("2001:16b8::/32")};
    config.path_length = 3;
    config.loss_rate = loss;
    config.rate_limit = limit;
    config.seed = 42;
    provider_index = internet.add_provider(std::move(config));

    PoolConfig pool;
    pool.prefix = pfx("2001:16b8:100::/46");
    pool.allocation_length = 56;
    pool.rotation.kind = kind;
    pool.rotation.stride = 236;
    pool.seed = 7;
    internet.provider(provider_index).add_pool(pool);

    CpeDevice device;
    device.id = 1;
    device.mac = mac;
    device.mode = AddressingMode::kEui64;
    device.error_behavior = behavior;
    device.initial_slot = 0;
    internet.provider(provider_index).pools()[0].add_device(device);
  }

  Provider& provider() { return internet.provider(provider_index); }

  net::Ipv6Address wan(TimePoint t) {
    return provider().wan_address({0, 0}, t);
  }

  /// An address inside the device's allocation that is not the WAN address.
  net::Ipv6Address inside_allocation(TimePoint t) {
    const net::Prefix alloc = provider().allocation({0, 0}, t);
    return net::Ipv6Address{alloc.base().network() | 0x42,
                            0xdeadbeef12345678ULL};
  }
};

TEST(Provider, UnreachableErrorLeaksWanAddress) {
  Fixture f;
  const auto reply = f.provider().handle_probe(f.inside_allocation(0), 64, 0);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->source, f.wan(0));
  EXPECT_EQ(reply->type, wire::Icmpv6Type::kDestinationUnreachable);
  EXPECT_EQ(reply->code, 1);  // admin prohibited
}

TEST(Provider, ErrorFlavorFollowsDeviceBehavior) {
  {
    Fixture f{ErrorBehavior::kNoRoute};
    const auto r = f.provider().handle_probe(f.inside_allocation(0), 64, 0);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->code, 0);
  }
  {
    Fixture f{ErrorBehavior::kAddressUnreachable};
    const auto r = f.provider().handle_probe(f.inside_allocation(0), 64, 0);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->code, 3);
  }
  {
    Fixture f{ErrorBehavior::kHopLimitExceeded};
    const auto r = f.provider().handle_probe(f.inside_allocation(0), 64, 0);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->type, wire::Icmpv6Type::kTimeExceeded);
  }
}

TEST(Provider, SilentDeviceDropsProbe) {
  Fixture f{ErrorBehavior::kSilent};
  EXPECT_FALSE(f.provider().handle_probe(f.inside_allocation(0), 64, 0));
}

TEST(Provider, ProbeToWanAddressGetsEchoReply) {
  Fixture f;
  const auto reply = f.provider().handle_probe(f.wan(0), 64, 0);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, wire::Icmpv6Type::kEchoReply);
  EXPECT_EQ(reply->source, f.wan(0));
}

TEST(Provider, UnallocatedSpaceIsSilent) {
  Fixture f;
  // Slot 999 has no device.
  const net::Ipv6Address target{
      pfx("2001:16b8:100::/46").subnet(56, net::Uint128{999}).base().network(),
      0x1234};
  EXPECT_FALSE(f.provider().handle_probe(target, 64, 0).has_value());
}

TEST(Provider, SpaceOutsidePoolsIsSilent) {
  Fixture f;
  EXPECT_FALSE(
      f.provider().handle_probe(addr("2001:16b8:f000::1"), 64, 0).has_value());
}

TEST(Provider, LowHopLimitExpiresAtCoreRouters) {
  Fixture f;
  for (unsigned hl = 1; hl <= 3; ++hl) {
    const auto reply = f.provider().handle_probe(
        f.inside_allocation(0), static_cast<std::uint8_t>(hl), 0);
    ASSERT_TRUE(reply.has_value()) << hl;
    EXPECT_EQ(reply->type, wire::Icmpv6Type::kTimeExceeded);
    EXPECT_EQ(reply->source, f.provider().core_hop_address(hl));
    // Core infrastructure is statically numbered, not EUI-64.
    EXPECT_FALSE(net::is_eui64(reply->source));
  }
}

TEST(Provider, HopLimitExactlyAtCpeYieldsTimeExceededFromCpe) {
  Fixture f;
  const auto reply = f.provider().handle_probe(
      f.inside_allocation(0),
      static_cast<std::uint8_t>(f.provider().cpe_distance()), 0);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, wire::Icmpv6Type::kTimeExceeded);
  EXPECT_EQ(reply->source, f.wan(0));
  EXPECT_TRUE(net::is_eui64(reply->source));
}

TEST(Provider, RotationMovesTheLeakedAddress) {
  Fixture f{ErrorBehavior::kAdminProhibited, RotationPolicy::Kind::kStride};
  const TimePoint day0 = hours(12);
  const TimePoint day1 = kDay + hours(12);
  const auto r0 = f.provider().handle_probe(f.inside_allocation(day0), 64, day0);
  const auto r1 = f.provider().handle_probe(f.inside_allocation(day1), 64, day1);
  ASSERT_TRUE(r0);
  ASSERT_TRUE(r1);
  EXPECT_NE(r0->source.network(), r1->source.network());
  EXPECT_EQ(r0->source.iid(), r1->source.iid());  // the static scent
  // Yesterday's allocation is silent today (returned to the pool).
  EXPECT_FALSE(
      f.provider().handle_probe(f.inside_allocation(day0), 64, day1));
}

TEST(Provider, LossDropsSomeProbesDeterministically) {
  Fixture f{ErrorBehavior::kAdminProhibited, RotationPolicy::Kind::kStatic,
            0.5};
  int responded = 0;
  constexpr int kProbes = 200;
  for (int i = 0; i < kProbes; ++i) {
    // Vary target IID so the per-probe loss hash varies.
    const net::Prefix alloc = f.provider().allocation({0, 0}, 0);
    const net::Ipv6Address target{alloc.base().network(),
                                  0x1000 + static_cast<std::uint64_t>(i)};
    if (f.provider().handle_probe(target, 64, 0)) ++responded;
  }
  EXPECT_GT(responded, kProbes / 4);
  EXPECT_LT(responded, kProbes * 3 / 4);
  // Determinism: same probe, same fate.
  const net::Ipv6Address t{f.provider().allocation({0, 0}, 0).base().network(),
                           0x1000};
  const bool fate = f.provider().handle_probe(t, 64, 0).has_value();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(f.provider().handle_probe(t, 64, 0).has_value(), fate);
  }
}

TEST(Provider, RateLimitSuppressesErrorBurst) {
  Fixture f{ErrorBehavior::kAdminProhibited, RotationPolicy::Kind::kStatic,
            0.0, RateLimit{10.0, 10.0}};
  int responded = 0;
  for (int i = 0; i < 50; ++i) {
    // All probes at the same instant: only the burst allowance responds.
    if (f.provider().handle_probe(f.inside_allocation(0), 64, 0)) ++responded;
  }
  EXPECT_EQ(responded, 10);
  // After a second, tokens refill.
  EXPECT_TRUE(f.provider().handle_probe(f.inside_allocation(0), 64, kSecond));
}

TEST(Provider, RateLimitDoesNotThrottleEchoReplies) {
  Fixture f{ErrorBehavior::kAdminProhibited, RotationPolicy::Kind::kStatic,
            0.0, RateLimit{1.0, 1.0}};
  // Exhaust the error bucket.
  ASSERT_TRUE(f.provider().handle_probe(f.inside_allocation(0), 64, 0));
  ASSERT_FALSE(f.provider().handle_probe(f.inside_allocation(0), 64, 0));
  // Informational echo exchange still works.
  EXPECT_TRUE(f.provider().handle_probe(f.wan(0), 64, 0));
}

TEST(Provider, FindDeviceByMac) {
  Fixture f;
  const auto ref = f.provider().find_device(f.mac);
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->pool_index, 0u);
  EXPECT_EQ(ref->device_index, 0u);
  EXPECT_FALSE(
      f.provider().find_device(net::MacAddress{0x111111111111ULL}).has_value());
  EXPECT_EQ(f.provider().device_count(), 1u);
}

// ---- Internet --------------------------------------------------------------

TEST(Internet, RoutesByLongestPrefixToProvider) {
  Fixture f;
  EXPECT_EQ(f.internet.route(addr("2001:16b8:100::1")), 0u);
  EXPECT_FALSE(f.internet.route(addr("2003:e2::1")).has_value());
}

TEST(Internet, BgpViewMatchesAdvertisements) {
  Fixture f;
  const auto attribution = f.internet.bgp().lookup(addr("2001:16b8:100::1"));
  ASSERT_TRUE(attribution.has_value());
  EXPECT_EQ(attribution->origin_asn, 8881u);
  EXPECT_EQ(attribution->bgp_prefix, pfx("2001:16b8::/32"));
}

TEST(Internet, LogicalProbeCountsStats) {
  Fixture f;
  ASSERT_TRUE(f.internet.probe(f.inside_allocation(0), 64, 0).has_value());
  ASSERT_FALSE(f.internet.probe(addr("2003:e2::1"), 64, 0).has_value());
  EXPECT_EQ(f.internet.stats().probes_received, 2u);
  EXPECT_EQ(f.internet.stats().responses_sent, 1u);
  EXPECT_EQ(f.internet.stats().unrouted, 1u);
}

TEST(Internet, WireDeliveryRoundTrip) {
  Fixture f;
  const auto request = wire::build_echo_request(
      addr("2001:db8::1"), f.inside_allocation(0), 0x5C37, 1, 64);
  const auto response = f.internet.deliver(request, 0);
  ASSERT_TRUE(response.has_value());
  const auto parsed = wire::parse_packet(*response);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ip.source, f.wan(0));
  EXPECT_EQ(parsed->ip.destination, addr("2001:db8::1"));
  EXPECT_TRUE(parsed->icmp.is_error());
  // The error quotes our probe: target recoverable.
  const auto invoking = wire::extract_invoking_probe(parsed->icmp);
  ASSERT_TRUE(invoking.has_value());
  EXPECT_EQ(invoking->target, f.inside_allocation(0));
  EXPECT_EQ(invoking->identifier, 0x5C37);
}

TEST(Internet, WireDeliveryEchoReply) {
  Fixture f;
  const auto request = wire::build_echo_request(addr("2001:db8::1"), f.wan(0),
                                                7, 9, 64);
  const auto response = f.internet.deliver(request, 0);
  ASSERT_TRUE(response.has_value());
  const auto parsed = wire::parse_packet(*response);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->icmp.type, wire::Icmpv6Type::kEchoReply);
  EXPECT_EQ(parsed->icmp.identifier, 7);
  EXPECT_EQ(parsed->icmp.sequence, 9);
}

TEST(Internet, MalformedPacketsDropped) {
  Fixture f;
  std::vector<std::uint8_t> garbage(60, 0xab);
  EXPECT_FALSE(f.internet.deliver(garbage, 0).has_value());
  // Echo replies (not requests) are also dropped at ingress.
  const auto reply = wire::build_echo_reply(addr("2001:db8::1"),
                                            f.inside_allocation(0), 1, 1);
  EXPECT_FALSE(f.internet.deliver(reply, 0).has_value());
  EXPECT_EQ(f.internet.stats().malformed_dropped, 2u);
}

}  // namespace
}  // namespace scent::sim
