// Tests for world building: specs instantiate correctly and the paper
// world has the distributional properties the experiments rely on.
#include "sim/scenario.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "oui/oui_registry.h"

namespace scent::sim {
namespace {

TEST(WorldBuilder, TinyWorldShape) {
  PaperWorld world = make_tiny_world(1, 24);
  EXPECT_EQ(world.internet.provider_count(), 2u);
  const Provider& rot = world.internet.provider(world.versatel);
  EXPECT_EQ(rot.config().asn, 65001u);
  ASSERT_EQ(rot.pools().size(), 1u);
  EXPECT_EQ(rot.pools()[0].devices().size(), 24u);
  EXPECT_TRUE(rot.pools()[0].config().rotation.rotates());
  const Provider& stat = world.internet.provider(world.viettel);
  EXPECT_FALSE(stat.pools()[0].config().rotation.rotates());
}

TEST(WorldBuilder, SameSeedSameWorld) {
  PaperWorld a = make_tiny_world(99, 16);
  PaperWorld b = make_tiny_world(99, 16);
  const auto& da = a.internet.provider(a.versatel).pools()[0].devices();
  const auto& db = b.internet.provider(b.versatel).pools()[0].devices();
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].mac, db[i].mac);
    EXPECT_EQ(da[i].initial_slot, db[i].initial_slot);
  }
}

TEST(WorldBuilder, DifferentSeedsDifferentMacs) {
  PaperWorld a = make_tiny_world(1, 16);
  PaperWorld b = make_tiny_world(2, 16);
  const auto& da = a.internet.provider(a.versatel).pools()[0].devices();
  const auto& db = b.internet.provider(b.versatel).pools()[0].devices();
  int same = 0;
  for (std::size_t i = 0; i < da.size(); ++i) {
    if (da[i].mac == db[i].mac) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(WorldBuilder, MintedMacsAreUniqueAndVendorCorrect) {
  PaperWorld world = make_tiny_world(5, 24);
  std::set<net::MacAddress> macs;
  for (const std::size_t p : {world.versatel, world.viettel}) {
    for (const auto& pool : world.internet.provider(p).pools()) {
      for (const auto& d : pool.devices()) {
        EXPECT_TRUE(macs.insert(d.mac).second) << d.mac.to_string();
      }
    }
  }
  // TinyRotator is all-AVM, TinyStatic all-ZTE.
  for (const auto& d :
       world.internet.provider(world.versatel).pools()[0].devices()) {
    EXPECT_EQ(d.mac.oui().value(), 0x3810d5u);
  }
  for (const auto& d :
       world.internet.provider(world.viettel).pools()[0].devices()) {
    EXPECT_EQ(d.mac.oui().value(), 0x344b50u);
  }
}

TEST(WorldBuilder, InitialSlotsAreDistinctPerPool) {
  PaperWorld world = make_tiny_world(5, 24);
  for (const std::size_t p : {world.versatel, world.viettel}) {
    for (const auto& pool : world.internet.provider(p).pools()) {
      std::set<std::uint64_t> slots;
      for (const auto& d : pool.devices()) {
        EXPECT_TRUE(slots.insert(d.initial_slot).second);
        EXPECT_LT(d.initial_slot, pool.num_slots());
      }
    }
  }
}

TEST(WorldBuilder, StridePoolsPlaceContiguously) {
  // kAuto -> contiguous for stride pools: slot i for device i.
  PaperWorld world = make_tiny_world(5, 24);
  const auto& devices =
      world.internet.provider(world.versatel).pools()[0].devices();
  for (std::size_t i = 0; i < devices.size(); ++i) {
    EXPECT_EQ(devices[i].initial_slot, i);
  }
}

TEST(WorldBuilder, StaticPoolsScatter) {
  PaperWorld world = make_tiny_world(5, 24);
  const auto& devices =
      world.internet.provider(world.viettel).pools()[0].devices();
  bool any_nonsequential = false;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    if (devices[i].initial_slot != i) any_nonsequential = true;
  }
  EXPECT_TRUE(any_nonsequential);
}

// ---- Paper world (scaled down for test runtime) ---------------------------

class PaperWorldTest : public ::testing::Test {
 protected:
  static const PaperWorld& world() {
    static const PaperWorld w = [] {
      PaperWorldOptions options;
      options.scale = 0.1;
      options.tail_as_count = 24;
      options.devices_per_tail_pool = 24;
      return make_paper_world(options);
    }();
    return w;
  }
};

TEST_F(PaperWorldTest, ProviderInventory) {
  // 9 named + 24 tail.
  EXPECT_EQ(world().internet.provider_count(), 33u);
  EXPECT_EQ(world().internet.provider(world().versatel).config().asn, 8881u);
  EXPECT_EQ(world().internet.provider(world().viettel).config().country, "VN");
}

TEST_F(PaperWorldTest, PoolsNestInsideAdvertisements) {
  for (std::size_t p = 0; p < world().internet.provider_count(); ++p) {
    const Provider& provider = world().internet.provider(p);
    ASSERT_FALSE(provider.config().advertisements.empty());
    const net::Prefix advert = provider.config().advertisements.front();
    for (const auto& pool : provider.pools()) {
      EXPECT_TRUE(advert.contains(pool.config().prefix))
          << provider.config().name << " pool "
          << pool.config().prefix.to_string();
    }
  }
}

TEST_F(PaperWorldTest, PoolsDoNotOverlap) {
  for (std::size_t p = 0; p < world().internet.provider_count(); ++p) {
    const auto& pools = world().internet.provider(p).pools();
    for (std::size_t i = 0; i < pools.size(); ++i) {
      for (std::size_t j = i + 1; j < pools.size(); ++j) {
        EXPECT_FALSE(
            pools[i].config().prefix.contains(pools[j].config().prefix));
        EXPECT_FALSE(
            pools[j].config().prefix.contains(pools[i].config().prefix));
      }
    }
  }
}

TEST_F(PaperWorldTest, NetCologneIsAvmDominated) {
  const Provider& nc = world().internet.provider(world().netcologne);
  std::size_t avm = 0;
  std::size_t total = 0;
  const auto avm_ouis = oui::builtin_registry().ouis_of("AVM");
  for (const auto& pool : nc.pools()) {
    for (const auto& d : pool.devices()) {
      ++total;
      for (const auto& o : avm_ouis) {
        if (d.mac.oui() == o) {
          ++avm;
          break;
        }
      }
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(avm) / static_cast<double>(total), 0.99);
}

TEST_F(PaperWorldTest, PathologiesArePlanted) {
  // Reused MAC present in multiple providers.
  int reuse_count = 0;
  int zero_count = 0;
  for (std::size_t p = 0; p < world().internet.provider_count(); ++p) {
    const Provider& provider = world().internet.provider(p);
    if (provider.find_device(world().reused_mac)) ++reuse_count;
    if (provider.find_device(world().default_mac)) ++zero_count;
  }
  EXPECT_GE(reuse_count, 3);
  EXPECT_GE(zero_count, 5);
}

TEST_F(PaperWorldTest, ProviderSwitchersHaveDisjointActiveIntervals) {
  const Provider& versatel = world().internet.provider(world().versatel);
  const Provider& dtag = world().internet.provider(world().dtag);
  const auto in_a = versatel.find_device(world().switcher_ab);
  const auto in_b = dtag.find_device(world().switcher_ab);
  ASSERT_TRUE(in_a.has_value());
  ASSERT_TRUE(in_b.has_value());
  const CpeDevice& da =
      versatel.pools()[in_a->pool_index].devices()[in_a->device_index];
  const CpeDevice& db =
      dtag.pools()[in_b->pool_index].devices()[in_b->device_index];
  EXPECT_LE(da.active_until, db.active_from);
}

TEST_F(PaperWorldTest, TailCoversManyCountries) {
  std::set<std::string> countries;
  for (std::size_t p = 0; p < world().internet.provider_count(); ++p) {
    countries.insert(world().internet.provider(p).config().country);
  }
  EXPECT_GE(countries.size(), 15u);
}

TEST_F(PaperWorldTest, RoughlyHalfOfTailRotates) {
  int rotating = 0;
  for (const std::size_t p : world().tail) {
    if (world().internet.provider(p).pools()[0].config().rotation.rotates()) {
      ++rotating;
    }
  }
  const double fraction =
      static_cast<double>(rotating) / static_cast<double>(world().tail.size());
  EXPECT_GT(fraction, 0.3);
  EXPECT_LT(fraction, 0.8);
}

}  // namespace
}  // namespace scent::sim
