// Tests for RotationPool: device placement, rotation, ownership inversion.
#include "sim/pool.h"

#include <gtest/gtest.h>

#include <set>

namespace scent::sim {
namespace {

net::Prefix pfx(const char* text) { return *net::Prefix::parse(text); }

PoolConfig stride_pool() {
  PoolConfig c;
  c.prefix = pfx("2001:16b8:100::/46");
  c.allocation_length = 56;
  c.rotation.kind = RotationPolicy::Kind::kStride;
  c.rotation.period = kDay;
  c.rotation.window_length = hours(6);
  c.rotation.stride = 236;
  c.seed = 77;
  return c;
}

CpeDevice make_device(DeviceId id, std::uint64_t slot,
                      AddressingMode mode = AddressingMode::kEui64) {
  CpeDevice d;
  d.id = id;
  d.mac = net::MacAddress{0x3810d5000000ULL | id};
  d.mode = mode;
  d.initial_slot = slot;
  return d;
}

TEST(RotationPool, SlotCountFromPrefixAndAllocation) {
  EXPECT_EQ(RotationPool{stride_pool()}.num_slots(), 1024u);  // /46 -> /56
  PoolConfig c64 = stride_pool();
  c64.prefix = pfx("2001:16b8:500::/48");
  c64.allocation_length = 64;
  EXPECT_EQ(RotationPool{c64}.num_slots(), 65536u);
}

TEST(RotationPool, AllocationIsSlotSubnet) {
  RotationPool pool{stride_pool()};
  pool.add_device(make_device(1, 3));
  EXPECT_EQ(pool.allocation_of(0, 0), pfx("2001:16b8:100:300::/56"));
}

TEST(RotationPool, WanAddressEmbedsEui64) {
  RotationPool pool{stride_pool()};
  pool.add_device(make_device(1, 0));
  const net::Ipv6Address wan = pool.wan_address_of(0, 0);
  EXPECT_TRUE(net::is_eui64(wan));
  EXPECT_EQ(net::embedded_mac(wan)->bits(), 0x3810d5000001ULL);
  EXPECT_EQ(wan.network(), pfx("2001:16b8:100::/56").base().network());
}

TEST(RotationPool, StrideRotationMovesWanAddressDaily) {
  RotationPool pool{stride_pool()};
  pool.add_device(make_device(1, 0));
  const auto day0 = pool.wan_address_of(0, hours(12));
  const auto day1 = pool.wan_address_of(0, kDay + hours(12));
  const auto day2 = pool.wan_address_of(0, days(2) + hours(12));
  EXPECT_NE(day0.network(), day1.network());
  EXPECT_NE(day1.network(), day2.network());
  // EUI-64 IID survives every rotation — the vulnerability.
  EXPECT_EQ(day0.iid(), day1.iid());
  EXPECT_EQ(day1.iid(), day2.iid());
  // And the network advances by the stride in /56 units.
  EXPECT_EQ(pool.slot_of(0, kDay + hours(12)), 236u);
  EXPECT_EQ(pool.slot_of(0, days(2) + hours(12)), 472u);
}

TEST(RotationPool, PrivacyModeIidChangesWithRotation) {
  RotationPool pool{stride_pool()};
  pool.add_device(make_device(1, 0, AddressingMode::kPrivacy));
  const auto day0 = pool.wan_address_of(0, hours(12));
  const auto day1 = pool.wan_address_of(0, kDay + hours(12));
  EXPECT_NE(day0.iid(), day1.iid());
  EXPECT_FALSE(net::is_eui64(day0));
  EXPECT_FALSE(net::is_eui64(day1));
}

TEST(RotationPool, StablePrivacyIidStablePerNetwork) {
  RotationPool pool{stride_pool()};
  pool.add_device(make_device(1, 0, AddressingMode::kStablePrivacy));
  const auto a = pool.wan_address_of(0, hours(1));
  const auto b = pool.wan_address_of(0, hours(13));  // same epoch
  EXPECT_EQ(a, b);
  const auto c = pool.wan_address_of(0, kDay + hours(12));
  EXPECT_NE(a.iid(), c.iid());  // different network -> different IID
}

TEST(RotationPool, LowByteMode) {
  RotationPool pool{stride_pool()};
  pool.add_device(make_device(1, 5, AddressingMode::kLowByte));
  EXPECT_EQ(pool.wan_address_of(0, 0).iid(), 1u);
}

TEST(RotationPool, DeviceOwningInvertsAllocation) {
  RotationPool pool{stride_pool()};
  pool.add_device(make_device(1, 0));
  pool.add_device(make_device(2, 100));
  pool.add_device(make_device(3, 1023));

  for (const TimePoint t : {TimePoint{0}, hours(12), kDay + hours(12),
                            days(17) + hours(9)}) {
    for (std::size_t d = 0; d < 3; ++d) {
      const net::Prefix alloc = pool.allocation_of(d, t);
      // Any address inside the allocation resolves to the device.
      const net::Ipv6Address inside{alloc.base().network() | 0xab,
                                    0x123456789abcdef0ULL};
      const auto owner = pool.device_owning(inside, t);
      ASSERT_TRUE(owner.has_value()) << "t=" << t << " d=" << d;
      EXPECT_EQ(*owner, d);
    }
  }
}

TEST(RotationPool, EmptySlotHasNoOwner) {
  RotationPool pool{stride_pool()};
  pool.add_device(make_device(1, 0));
  // Slot 500 is unoccupied at t=0.
  const net::Prefix alloc = pfx("2001:16b8:100::/46")
                                .subnet(56, net::Uint128{500});
  EXPECT_FALSE(pool.device_owning(alloc.base(), 0).has_value());
}

TEST(RotationPool, InactiveDeviceDoesNotOwn) {
  RotationPool pool{stride_pool()};
  CpeDevice d = make_device(1, 0);
  d.active_from = days(10);
  d.active_until = days(20);
  pool.add_device(d);
  const net::Prefix alloc0 = pool.allocation_of(0, hours(1));
  EXPECT_FALSE(pool.device_owning(alloc0.base(), hours(1)).has_value());
  const net::Prefix alloc15 = pool.allocation_of(0, days(15));
  EXPECT_TRUE(pool.device_owning(alloc15.base(), days(15)).has_value());
  const net::Prefix alloc25 = pool.allocation_of(0, days(25));
  EXPECT_FALSE(pool.device_owning(alloc25.base(), days(25)).has_value());
}

TEST(RotationPool, OwnershipConsistentDuringRotationWindow) {
  // Mid-window, every device must still be resolvable at exactly the slot
  // the schedule puts it in — rotated or not.
  RotationPool pool{stride_pool()};
  for (DeviceId id = 1; id <= 64; ++id) {
    pool.add_device(make_device(id, id - 1));
  }
  const TimePoint mid_window = days(5) + hours(3);
  for (std::size_t d = 0; d < 64; ++d) {
    const auto owner =
        pool.device_owning(pool.wan_address_of(d, mid_window), mid_window);
    ASSERT_TRUE(owner.has_value()) << d;
    EXPECT_EQ(*owner, d);
  }
}

TEST(RotationPool, CoversChecksPrefixMembership) {
  RotationPool pool{stride_pool()};
  EXPECT_TRUE(pool.covers(pfx("2001:16b8:100::/46").base()));
  EXPECT_TRUE(pool.covers(
      net::Ipv6Address{pfx("2001:16b8:103:ff00::/56").base().network(), 5}));
  EXPECT_FALSE(pool.covers(pfx("2001:16b8:200::/46").base()));
}

/// Property: across policies, the WAN address at any time resolves back to
/// the same device (probe -> CPE consistency the whole pipeline rests on).
class PoolPolicyProperty
    : public ::testing::TestWithParam<RotationPolicy::Kind> {};

TEST_P(PoolPolicyProperty, WanAddressResolvesToOwner) {
  PoolConfig c = stride_pool();
  c.rotation.kind = GetParam();
  RotationPool pool{c};
  for (DeviceId id = 1; id <= 40; ++id) {
    pool.add_device(make_device(id, (id * 13) % 1024));
  }
  const auto in_rotation_window = [&](TimePoint t) {
    const Duration tod = time_of_day(t);
    return c.rotation.rotates() && tod < c.rotation.window_length;
  };
  for (const TimePoint t :
       {TimePoint{0}, hours(12), kDay + hours(1), kDay + hours(12),
        days(7) + hours(3), days(30) + hours(23)}) {
    for (std::size_t d = 0; d < 40; ++d) {
      const net::Ipv6Address wan = pool.wan_address_of(d, t);
      const auto owner = pool.device_owning(wan, t);
      ASSERT_TRUE(owner.has_value())
          << "kind=" << static_cast<int>(GetParam()) << " t=" << t
          << " d=" << d;
      if (*owner != d) {
        // Mid-window, a freshly rotated-in device may transiently shadow
        // one that has not rotated out yet; the resolved owner must then
        // genuinely occupy the same slot right now.
        EXPECT_TRUE(in_rotation_window(t)) << "t=" << t << " d=" << d;
        EXPECT_EQ(pool.slot_of(*owner, t), pool.slot_of(d, t));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PoolPolicyProperty,
                         ::testing::Values(RotationPolicy::Kind::kStatic,
                                           RotationPolicy::Kind::kStride,
                                           RotationPolicy::Kind::kShuffle));

}  // namespace
}  // namespace scent::sim
