// Tests for the prefix trie (LPM) and the BGP table substitute.
#include <gtest/gtest.h>

#include "routing/bgp_table.h"
#include "routing/prefix_trie.h"

namespace scent::routing {
namespace {

net::Prefix pfx(const char* text) { return *net::Prefix::parse(text); }
net::Ipv6Address addr(const char* text) {
  return *net::Ipv6Address::parse(text);
}

TEST(PrefixTrie, InsertAndExactFind) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.insert(pfx("2001:db8::/32"), 1));
  EXPECT_TRUE(trie.insert(pfx("2001:db8:1::/48"), 2));
  ASSERT_NE(trie.find(pfx("2001:db8::/32")), nullptr);
  EXPECT_EQ(*trie.find(pfx("2001:db8::/32")), 1);
  EXPECT_EQ(*trie.find(pfx("2001:db8:1::/48")), 2);
  EXPECT_EQ(trie.find(pfx("2001:db8::/33")), nullptr);
  EXPECT_EQ(trie.size(), 2u);
}

TEST(PrefixTrie, InsertReplacesValue) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.insert(pfx("2001:db8::/32"), 1));
  EXPECT_FALSE(trie.insert(pfx("2001:db8::/32"), 9));
  EXPECT_EQ(*trie.find(pfx("2001:db8::/32")), 9);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(PrefixTrie, LongestMatchPrefersMoreSpecific) {
  PrefixTrie<int> trie;
  trie.insert(pfx("2001:db8::/32"), 1);
  trie.insert(pfx("2001:db8:1::/48"), 2);
  trie.insert(pfx("2001:db8:1:100::/56"), 3);

  const auto m1 = trie.longest_match(addr("2001:db8:ffff::1"));
  ASSERT_TRUE(m1.has_value());
  EXPECT_EQ(*m1->value, 1);
  EXPECT_EQ(m1->prefix, pfx("2001:db8::/32"));

  const auto m2 = trie.longest_match(addr("2001:db8:1:200::1"));
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(*m2->value, 2);

  const auto m3 = trie.longest_match(addr("2001:db8:1:1ff::1"));
  ASSERT_TRUE(m3.has_value());
  EXPECT_EQ(*m3->value, 3);
}

TEST(PrefixTrie, LongestMatchMissesOutsideAllPrefixes) {
  PrefixTrie<int> trie;
  trie.insert(pfx("2001:db8::/32"), 1);
  EXPECT_FALSE(trie.longest_match(addr("2003:e2::1")).has_value());
}

TEST(PrefixTrie, DefaultRouteMatchesEverything) {
  PrefixTrie<int> trie;
  trie.insert(pfx("::/0"), 42);
  const auto m = trie.longest_match(addr("ffff:ffff::1"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m->value, 42);
  EXPECT_EQ(m->prefix.length(), 0u);
}

TEST(PrefixTrie, EraseKeepsMoreSpecifics) {
  PrefixTrie<int> trie;
  trie.insert(pfx("2001:db8::/32"), 1);
  trie.insert(pfx("2001:db8:1::/48"), 2);
  EXPECT_TRUE(trie.erase(pfx("2001:db8::/32")));
  EXPECT_FALSE(trie.erase(pfx("2001:db8::/32")));
  EXPECT_EQ(trie.find(pfx("2001:db8::/32")), nullptr);
  ASSERT_NE(trie.find(pfx("2001:db8:1::/48")), nullptr);
  const auto m = trie.longest_match(addr("2001:db8:1::9"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m->value, 2);
  EXPECT_FALSE(trie.longest_match(addr("2001:db8:2::9")).has_value());
}

TEST(PrefixTrie, ForEachVisitsInPrefixOrder) {
  PrefixTrie<int> trie;
  trie.insert(pfx("2003::/16"), 3);
  trie.insert(pfx("2001:db8::/32"), 1);
  trie.insert(pfx("2001:db8:1::/48"), 2);
  std::vector<net::Prefix> visited;
  trie.for_each([&](const net::Prefix& p, int) { visited.push_back(p); });
  ASSERT_EQ(visited.size(), 3u);
  EXPECT_EQ(visited[0], pfx("2001:db8::/32"));
  EXPECT_EQ(visited[1], pfx("2001:db8:1::/48"));
  EXPECT_EQ(visited[2], pfx("2003::/16"));
}

TEST(PrefixTrie, HostRouteAtFullLength) {
  PrefixTrie<int> trie;
  trie.insert(pfx("2001:db8::7/128"), 7);
  const auto m = trie.longest_match(addr("2001:db8::7"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m->value, 7);
  EXPECT_FALSE(trie.longest_match(addr("2001:db8::8")).has_value());
}

// ---- BgpTable -------------------------------------------------------------

TEST(BgpTable, LookupAttributesToMostSpecific) {
  BgpTable bgp;
  bgp.announce({pfx("2001:16b8::/32"), 8881, "DE", "Versatel"});
  bgp.announce({pfx("2001:16b8:8000::/33"), 8882, "DE", "MoreSpecific"});

  const auto a1 = bgp.lookup(addr("2001:16b8:1::1"));
  ASSERT_TRUE(a1.has_value());
  EXPECT_EQ(a1->origin_asn, 8881u);
  EXPECT_EQ(a1->bgp_prefix, pfx("2001:16b8::/32"));
  EXPECT_EQ(a1->country, "DE");

  const auto a2 = bgp.lookup(addr("2001:16b8:8000::1"));
  ASSERT_TRUE(a2.has_value());
  EXPECT_EQ(a2->origin_asn, 8882u);
}

TEST(BgpTable, LookupMissReturnsNullopt) {
  BgpTable bgp;
  bgp.announce({pfx("2001:16b8::/32"), 8881, "DE", "Versatel"});
  EXPECT_FALSE(bgp.lookup(addr("2003:e2::1")).has_value());
}

TEST(BgpTable, DumpReturnsAllAnnouncements) {
  BgpTable bgp;
  bgp.announce({pfx("2003:e2::/32"), 3320, "DE", "DTAG"});
  bgp.announce({pfx("2001:16b8::/32"), 8881, "DE", "Versatel"});
  const auto ads = bgp.dump();
  ASSERT_EQ(ads.size(), 2u);
  EXPECT_EQ(ads[0].origin_asn, 8881u);  // prefix order
  EXPECT_EQ(ads[1].origin_asn, 3320u);
  EXPECT_EQ(bgp.size(), 2u);
}

}  // namespace
}  // namespace scent::routing
