// Tests for the flight-recorder ring, the shard-merge collector, and the
// ScopedSample instrumentation helper: wrap/overflow accounting, oldest-
// first drains, lane append semantics, and clock stamping.
#include "trace/recorder.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/sim_time.h"

namespace scent::trace {
namespace {

std::vector<std::int64_t> drained_values(TraceRecorder& recorder) {
  std::vector<TraceEvent> events;
  recorder.drain_into(events);
  std::vector<std::int64_t> values;
  values.reserve(events.size());
  for (const auto& e : events) values.push_back(e.value);
  return values;
}

TEST(TraceRecorder, RecordsUpToCapacityWithoutDrops) {
  TraceRecorder recorder{8};
  EXPECT_EQ(recorder.capacity(), 8u);
  for (std::int64_t i = 0; i < 8; ++i) recorder.counter("c", i);
  EXPECT_EQ(recorder.size(), 8u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(drained_values(recorder),
            (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(TraceRecorder, OverflowKeepsNewestAndCountsEveryLoss) {
  // Flight-recorder semantics: 20 events into an 8-slot ring keeps the
  // newest 8 and reports exactly 12 overwritten.
  TraceRecorder recorder{8};
  for (std::int64_t i = 0; i < 20; ++i) recorder.counter("c", i);
  EXPECT_EQ(recorder.size(), 8u);
  EXPECT_EQ(recorder.dropped(), 12u);
  EXPECT_EQ(drained_values(recorder),
            (std::vector<std::int64_t>{12, 13, 14, 15, 16, 17, 18, 19}));
  // The drop counter survives the drain until harvested...
  EXPECT_EQ(recorder.dropped(), 12u);
  EXPECT_EQ(recorder.take_dropped(), 12u);
  // ...and harvesting clears it.
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.take_dropped(), 0u);
}

TEST(TraceRecorder, DrainResetsRingForReuse) {
  TraceRecorder recorder{4};
  for (std::int64_t i = 0; i < 6; ++i) recorder.counter("c", i);
  std::vector<TraceEvent> events;
  recorder.drain_into(events);
  EXPECT_EQ(recorder.size(), 0u);
  // Post-drain the ring records from scratch; prior wrap state is gone.
  for (std::int64_t i = 100; i < 103; ++i) recorder.counter("c", i);
  EXPECT_EQ(drained_values(recorder),
            (std::vector<std::int64_t>{100, 101, 102}));
}

TEST(TraceRecorder, ZeroCapacityIsClampedToOne) {
  TraceRecorder recorder{0};
  EXPECT_EQ(recorder.capacity(), 1u);
  recorder.instant("a");
  recorder.instant("b");
  EXPECT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.dropped(), 1u);
}

TEST(TraceRecorder, StampsBoundVirtualClock) {
  sim::VirtualClock clock{sim::hours(2)};
  TraceRecorder recorder{16};
  recorder.set_clock(&clock);
  recorder.begin("phase");
  clock.advance(sim::kSecond);
  recorder.end("phase");

  std::vector<TraceEvent> events;
  recorder.drain_into(events);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, EventType::kBegin);
  EXPECT_EQ(events[0].virtual_us, sim::hours(2));
  EXPECT_EQ(events[1].type, EventType::kEnd);
  EXPECT_EQ(events[1].virtual_us, sim::hours(2) + sim::kSecond);
  EXPECT_LE(events[0].wall_ns, events[1].wall_ns);
}

TEST(TraceCollector, DrainAppendsToNamedLanesInOrder) {
  TraceCollector collector;
  TraceRecorder shard0{8};
  TraceRecorder shard1{8};
  shard0.counter("c", 1);
  shard1.counter("c", 2);
  collector.drain("shard 0", shard0);
  collector.drain("shard 1", shard1);

  // A second drain into an existing name appends (a campaign drains each
  // shard once per day); a new name opens a lane at the end.
  shard0.counter("c", 3);
  collector.drain("shard 0", shard0);

  ASSERT_EQ(collector.lanes().size(), 2u);
  EXPECT_EQ(collector.lanes()[0].name, "shard 0");
  ASSERT_EQ(collector.lanes()[0].events.size(), 2u);
  EXPECT_EQ(collector.lanes()[0].events[0].value, 1);
  EXPECT_EQ(collector.lanes()[0].events[1].value, 3);
  EXPECT_EQ(collector.lanes()[1].name, "shard 1");
  EXPECT_EQ(collector.total_events(), 3u);
  EXPECT_EQ(collector.total_dropped(), 0u);
}

TEST(TraceCollector, AccumulatesDropCountsAcrossDrains) {
  TraceCollector collector{4};
  EXPECT_EQ(collector.recorder_capacity(), 4u);
  TraceRecorder recorder{collector.recorder_capacity()};
  for (std::int64_t i = 0; i < 10; ++i) recorder.counter("c", i);
  collector.drain("lane", recorder);
  for (std::int64_t i = 0; i < 7; ++i) recorder.counter("c", i);
  collector.drain("lane", recorder);
  EXPECT_EQ(collector.lanes()[0].dropped, 6u + 3u);
  EXPECT_EQ(collector.total_dropped(), 9u);
  EXPECT_EQ(collector.total_events(), 8u);
}

TEST(TraceCollector, AppendAddsDriverSideEvents) {
  TraceCollector collector;
  collector.append("driver", TraceEvent{"marker", EventType::kInstant,
                                        123, 456, 0});
  ASSERT_EQ(collector.lanes().size(), 1u);
  EXPECT_EQ(collector.lanes()[0].events[0].wall_ns, 123u);
  EXPECT_EQ(collector.lanes()[0].events[0].virtual_us, 456);
}

TEST(ScopedSample, BothSinksNullRecordsNothing) {
  { const ScopedSample sample{nullptr, nullptr, "noop"}; }
  // Nothing to assert beyond "does not crash": the null-null configuration
  // is the shipping default and must be inert.
  SUCCEED();
}

TEST(ScopedSample, RecordsBeginEndPairAndSketchObservation) {
  TraceRecorder recorder{8};
  QuantileSketch sketch;
  { const ScopedSample sample{&recorder, &sketch, "work"}; }

  std::vector<TraceEvent> events;
  recorder.drain_into(events);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, EventType::kBegin);
  EXPECT_EQ(events[1].type, EventType::kEnd);
  EXPECT_STREQ(events[0].name, "work");
  EXPECT_EQ(sketch.count(), 1u);
  // The observed duration covers at least the begin->end wall span.
  EXPECT_GE(sketch.max(), events[1].wall_ns - events[0].wall_ns);
}

TEST(ScopedSample, SketchOnlyModeSkipsTheRing) {
  QuantileSketch sketch;
  { const ScopedSample sample{nullptr, &sketch, "work"}; }
  EXPECT_EQ(sketch.count(), 1u);
}

}  // namespace
}  // namespace scent::trace
