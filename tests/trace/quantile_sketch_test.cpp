// Tests for the mergeable log-bucketed quantile sketch: bucket geometry,
// randomized differential accuracy against exact sorted quantiles, and the
// merge algebra the shard-order determinism contract rests on (§5h).
#include "trace/quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace scent::trace {
namespace {

/// Exact reference: the same 1-based rank rule quantile() uses, answered
/// from the sorted sample vector.
std::uint64_t exact_quantile(std::vector<std::uint64_t> sorted, double q) {
  if (sorted.empty()) return 0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(sorted.size())) + 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

/// A paper-shaped latency population: mostly small values with a heavy
/// tail spanning several octaves (the shape of per-batch ingest times).
std::vector<std::uint64_t> make_samples(std::uint64_t seed,
                                        std::size_t count) {
  sim::Rng rng{seed};
  std::vector<std::uint64_t> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (rng.chance(0.05)) {
      samples.push_back(rng.below(1u << 30));  // tail: up to ~1s in ns
    } else if (rng.chance(0.5)) {
      samples.push_back(rng.below(1u << 12));  // body
    } else {
      samples.push_back(rng.below(48));        // exact small buckets
    }
  }
  return samples;
}

TEST(QuantileSketch, BucketGeometryRoundTrips) {
  // Every bucket's lower bound maps back to that bucket, the bucket above
  // starts strictly later, and the representative lies inside the bucket.
  for (std::size_t i = 0; i + 1 < QuantileSketch::kBucketCount; ++i) {
    const std::uint64_t lo = QuantileSketch::lower_bound_for(i);
    const std::uint64_t next = QuantileSketch::lower_bound_for(i + 1);
    ASSERT_EQ(QuantileSketch::index_for(lo), i) << "bucket " << i;
    ASSERT_LT(lo, next) << "bucket " << i;
    ASSERT_EQ(QuantileSketch::index_for(next - 1), i) << "bucket " << i;
    const std::uint64_t rep = QuantileSketch::representative_for(i);
    ASSERT_LE(lo, rep) << "bucket " << i;
    ASSERT_LT(rep, next) << "bucket " << i;
  }
  // The full 64-bit range lands in the last bucket.
  EXPECT_EQ(QuantileSketch::index_for(~std::uint64_t{0}),
            QuantileSketch::kBucketCount - 1);
}

TEST(QuantileSketch, SmallValuesAreExact) {
  QuantileSketch sketch;
  for (std::uint64_t v = 0; v < QuantileSketch::kSubCount; ++v) {
    sketch.observe(v);
  }
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.99}) {
    std::vector<std::uint64_t> sorted(QuantileSketch::kSubCount);
    for (std::uint64_t v = 0; v < sorted.size(); ++v) sorted[v] = v;
    EXPECT_EQ(sketch.quantile(q), exact_quantile(sorted, q)) << "q=" << q;
  }
}

TEST(QuantileSketch, RandomizedDifferentialVsSortedExact) {
  for (const std::uint64_t seed : {0xA1ull, 0xB2ull, 0xC3ull, 0xD4ull}) {
    const auto samples = make_samples(seed, 20000);
    QuantileSketch sketch;
    for (const std::uint64_t v : samples) sketch.observe(v);

    auto sorted = samples;
    std::sort(sorted.begin(), sorted.end());

    EXPECT_EQ(sketch.count(), samples.size());
    EXPECT_EQ(sketch.min(), sorted.front());
    EXPECT_EQ(sketch.max(), sorted.back());

    for (const double q :
         {0.0, 0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
      const std::uint64_t exact = exact_quantile(sorted, q);
      const std::uint64_t approx = sketch.quantile(q);
      const double bound =
          static_cast<double>(exact) * QuantileSketch::kRelativeError;
      const double diff = exact > approx
                              ? static_cast<double>(exact - approx)
                              : static_cast<double>(approx - exact);
      EXPECT_LE(diff, bound)
          << "seed=" << seed << " q=" << q << " exact=" << exact
          << " approx=" << approx;
    }
  }
}

TEST(QuantileSketch, MergeIsAssociativeAndCommutative) {
  const auto samples = make_samples(0x5EED, 9001);
  // Serial reference: one sketch over the whole stream.
  QuantileSketch serial;
  for (const std::uint64_t v : samples) serial.observe(v);

  // Three uneven parts.
  QuantileSketch a, b, c;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    (i < 100 ? a : i < 4000 ? b : c).observe(samples[i]);
  }

  QuantileSketch left_first = a;   // (a + b) + c
  left_first.merge_from(b);
  left_first.merge_from(c);
  QuantileSketch right_first = b;  // a + (b + c)
  right_first.merge_from(c);
  QuantileSketch a_copy = a;
  a_copy.merge_from(right_first);
  QuantileSketch reversed = c;     // c + b + a
  reversed.merge_from(b);
  reversed.merge_from(a);

  EXPECT_TRUE(left_first == serial);
  EXPECT_TRUE(a_copy == serial);
  EXPECT_TRUE(reversed == serial);

  // Merging an empty sketch is the identity, in both directions.
  QuantileSketch empty;
  QuantileSketch with_empty = serial;
  with_empty.merge_from(empty);
  EXPECT_TRUE(with_empty == serial);
  QuantileSketch from_empty;
  from_empty.merge_from(serial);
  EXPECT_TRUE(from_empty == serial);
}

TEST(QuantileSketch, ShardPartitionMergeIsBitIdenticalAtAnyShardCount) {
  // The §5h contract in miniature: contiguous shard partitions merged in
  // shard order must equal the serial sketch exactly — full state, not
  // just the exported quantiles.
  const auto samples = make_samples(0x71A, 12345);
  QuantileSketch serial;
  for (const std::uint64_t v : samples) serial.observe(v);

  for (const unsigned shards : {1u, 2u, 4u, 8u}) {
    std::vector<QuantileSketch> local(shards);
    for (unsigned s = 0; s < shards; ++s) {
      const std::size_t begin = samples.size() * s / shards;
      const std::size_t end = samples.size() * (s + 1) / shards;
      for (std::size_t i = begin; i < end; ++i) local[s].observe(samples[i]);
    }
    QuantileSketch merged;
    for (unsigned s = 0; s < shards; ++s) merged.merge_from(local[s]);
    EXPECT_TRUE(merged == serial) << shards << " shards";
    EXPECT_EQ(merged.quantile(0.999), serial.quantile(0.999));
  }
}

TEST(QuantileSketch, ResetClearsAllState) {
  QuantileSketch sketch;
  sketch.observe(17);
  sketch.observe(123456);
  sketch.reset();
  EXPECT_TRUE(sketch == QuantileSketch{});
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.quantile(0.5), 0u);
}

}  // namespace
}  // namespace scent::trace
