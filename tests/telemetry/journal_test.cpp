// JSONL journal round-trip, escaping, timestamping, and error reporting.
#include "telemetry/journal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

namespace scent::telemetry {
namespace {

/// Unique temp path per test, removed on destruction (same pattern as
/// core/io_test.cpp).
struct TempFile {
  std::string path;
  explicit TempFile(const char* tag) {
    path = std::string{::testing::TempDir()} + "/scent_journal_" + tag + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".jsonl";
  }
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(Journal, RoundTripPreservesTypesAndValues) {
  TempFile tmp{"roundtrip"};
  sim::VirtualClock clock{sim::hours(3)};
  Journal journal;
  ASSERT_TRUE(journal.open(tmp.path));
  journal.set_clock(&clock);

  EXPECT_TRUE(journal.event("funnel", {{"probes", std::uint64_t{123456789}},
                                       {"ratio", 0.75},
                                       {"rotating", true},
                                       {"prefix", "2001:db8::/48"}}));
  clock.advance(sim::kDay);
  EXPECT_TRUE(journal.event("tracker_miss", {{"day", -1}}));
  EXPECT_EQ(journal.events_written(), 2u);
  ASSERT_TRUE(journal.close());

  const auto events = load_journal(tmp.path);
  ASSERT_TRUE(events.has_value());
  ASSERT_EQ(events->size(), 2u);

  const JournalEvent& funnel = (*events)[0];
  EXPECT_EQ(funnel.type, "funnel");
  ASSERT_NE(funnel.find("time_us"), nullptr);
  EXPECT_EQ(std::get<std::int64_t>(*funnel.find("time_us")), sim::hours(3));
  EXPECT_EQ(std::get<std::int64_t>(*funnel.find("probes")), 123456789);
  EXPECT_DOUBLE_EQ(std::get<double>(*funnel.find("ratio")), 0.75);
  EXPECT_EQ(std::get<bool>(*funnel.find("rotating")), true);
  EXPECT_EQ(std::get<std::string>(*funnel.find("prefix")), "2001:db8::/48");

  const JournalEvent& miss = (*events)[1];
  EXPECT_EQ(miss.type, "tracker_miss");
  EXPECT_EQ(std::get<std::int64_t>(*miss.find("time_us")),
            sim::hours(3) + sim::kDay);
  EXPECT_EQ(std::get<std::int64_t>(*miss.find("day")), -1);
}

TEST(Journal, StringsAreEscapedAndRecovered) {
  TempFile tmp{"escape"};
  Journal journal;
  ASSERT_TRUE(journal.open(tmp.path));
  const std::string nasty = "quote\" slash\\ newline\n tab\t done";
  EXPECT_TRUE(journal.event("note", {{"text", nasty}}));
  ASSERT_TRUE(journal.close());

  const auto events = load_journal(tmp.path);
  ASSERT_TRUE(events.has_value());
  ASSERT_EQ(events->size(), 1u);
  EXPECT_EQ(std::get<std::string>(*(*events)[0].find("text")), nasty);
}

TEST(Journal, NoClockMeansNoTimestampField) {
  TempFile tmp{"noclock"};
  Journal journal;
  ASSERT_TRUE(journal.open(tmp.path));
  EXPECT_TRUE(journal.event("bare", {}));
  ASSERT_TRUE(journal.close());
  const auto events = load_journal(tmp.path);
  ASSERT_TRUE(events.has_value());
  ASSERT_EQ(events->size(), 1u);
  EXPECT_EQ((*events)[0].find("time_us"), nullptr);
}

TEST(Journal, EventOnClosedJournalFails) {
  Journal journal;
  EXPECT_FALSE(journal.event("x", {}));
  EXPECT_FALSE(journal.is_open());
  EXPECT_TRUE(journal.close());  // nothing failed; close is a clean no-op
}

TEST(Journal, OpenFailureReportsFalse) {
  Journal journal;
  EXPECT_FALSE(journal.open("/nonexistent_dir_zzz/journal.jsonl"));
  EXPECT_FALSE(journal.is_open());
}

#ifdef __linux__
TEST(Journal, DiskFullSurfacesAtEventOrClose) {
  // /dev/full accepts opens and buffered writes but fails them at flush —
  // exactly the disk-full failure mode the journal must report.
  std::FILE* probe = std::fopen("/dev/full", "w");
  if (probe == nullptr) GTEST_SKIP() << "/dev/full not available";
  std::fclose(probe);

  Journal journal;
  ASSERT_TRUE(journal.open("/dev/full"));
  // The write may be buffered (reported ok) or flushed (reported failed);
  // either way close() must report the failure.
  bool all_ok = true;
  for (int i = 0; i < 10000; ++i) {
    all_ok = journal.event("fill", {{"i", i}}) && all_ok;
  }
  const bool close_ok = journal.close();
  EXPECT_FALSE(all_ok && close_ok);
}
#endif

TEST(ParseJournalLine, RejectsMalformedInput) {
  EXPECT_FALSE(parse_journal_line("").has_value());
  EXPECT_FALSE(parse_journal_line("not json").has_value());
  EXPECT_FALSE(parse_journal_line("{\"no_type\":1}").has_value());
  EXPECT_FALSE(parse_journal_line("{\"type\":\"x\",\"bad\":}").has_value());
  EXPECT_FALSE(parse_journal_line("{\"type\":\"x\"").has_value());
}

TEST(ParseJournalLine, AcceptsFlatObject) {
  const auto event =
      parse_journal_line("{\"type\":\"t\",\"n\":-5,\"f\":1.5,\"b\":false}");
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->type, "t");
  EXPECT_EQ(std::get<std::int64_t>(*event->find("n")), -5);
  EXPECT_DOUBLE_EQ(std::get<double>(*event->find("f")), 1.5);
  EXPECT_EQ(std::get<bool>(*event->find("b")), false);
}

TEST(LoadJournal, SkipsMalformedLinesAndCounts) {
  TempFile tmp{"skip"};
  std::FILE* f = std::fopen(tmp.path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"type\":\"good\",\"v\":1}\n", f);
  std::fputs("garbage line\n", f);
  std::fputs("\n", f);  // blank lines are tolerated, not counted
  std::fputs("{\"type\":\"good\",\"v\":2}\n", f);
  std::fclose(f);

  std::size_t skipped = 0;
  const auto events = load_journal(tmp.path, &skipped);
  ASSERT_TRUE(events.has_value());
  EXPECT_EQ(events->size(), 2u);
  EXPECT_EQ(skipped, 1u);
}

TEST(LoadJournal, MissingFileIsNullopt) {
  EXPECT_FALSE(load_journal("/nonexistent_zzz.jsonl").has_value());
}

}  // namespace
}  // namespace scent::telemetry
