// Scoped-span nesting and dual wall/virtual duration accounting.
#include "telemetry/span.h"

#include <gtest/gtest.h>

#include "telemetry/metrics.h"

namespace scent::telemetry {
namespace {

TEST(Span, NullRegistryIsANoOp) {
  Span span{nullptr, "anything"};
  span.stop();  // must not crash
}

TEST(Span, RecordsVirtualDurationFromRegistryClock) {
  sim::VirtualClock clock{sim::hours(1)};
  Registry reg;
  reg.set_clock(&clock);
  {
    Span span{&reg, "stage"};
    clock.advance(sim::minutes(30));
  }
  const auto& spans = reg.spans();
  ASSERT_EQ(spans.size(), 1u);
  const SpanStats& stats = spans.at("stage");
  EXPECT_EQ(stats.count, 1u);
  EXPECT_EQ(stats.virtual_us, sim::minutes(30));
  EXPECT_EQ(stats.depth, 0u);
}

TEST(Span, NestedSpansAggregateUnderSlashJoinedPaths) {
  sim::VirtualClock clock{0};
  Registry reg;
  reg.set_clock(&clock);
  {
    Span outer{&reg, "campaign"};
    for (int day = 0; day < 3; ++day) {
      Span inner{&reg, "day"};
      clock.advance(sim::kDay);
      {
        Span leaf{&reg, "sweep"};
        clock.advance(sim::kHour);
      }
    }
  }
  ASSERT_EQ(reg.spans().size(), 3u);
  const SpanStats& outer = reg.spans().at("campaign");
  const SpanStats& inner = reg.spans().at("campaign/day");
  const SpanStats& leaf = reg.spans().at("campaign/day/sweep");
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(inner.count, 3u);
  EXPECT_EQ(leaf.count, 3u);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(leaf.depth, 2u);
  EXPECT_EQ(outer.virtual_us, 3 * (sim::kDay + sim::kHour));
  EXPECT_EQ(inner.virtual_us, 3 * (sim::kDay + sim::kHour));
  EXPECT_EQ(leaf.virtual_us, 3 * sim::kHour);
  // Creation order is preserved for pre-order report printing.
  EXPECT_LT(outer.first_seq, inner.first_seq);
  EXPECT_LT(inner.first_seq, leaf.first_seq);
}

TEST(Span, SameNameUnderDifferentParentsIsADistinctPath) {
  Registry reg;
  {
    Span a{&reg, "bootstrap"};
    Span s{&reg, "sweep"};
  }
  {
    Span b{&reg, "campaign"};
    Span s{&reg, "sweep"};
  }
  EXPECT_NE(reg.spans().find("bootstrap/sweep"), reg.spans().end());
  EXPECT_NE(reg.spans().find("campaign/sweep"), reg.spans().end());
  EXPECT_EQ(reg.spans().find("sweep"), reg.spans().end());
}

TEST(Span, StopIsIdempotentAndEarly) {
  sim::VirtualClock clock{0};
  Registry reg;
  reg.set_clock(&clock);
  Span span{&reg, "stage"};
  clock.advance(sim::kMinute);
  span.stop();
  clock.advance(sim::kHour);  // after stop: not attributed
  span.stop();                // second stop: no double count
  const SpanStats& stats = reg.spans().at("stage");
  EXPECT_EQ(stats.count, 1u);
  EXPECT_EQ(stats.virtual_us, sim::kMinute);
}

TEST(Span, NoClockMeansZeroVirtualDuration) {
  Registry reg;
  { Span span{&reg, "stage"}; }
  EXPECT_EQ(reg.spans().at("stage").virtual_us, 0);
  EXPECT_EQ(reg.spans().at("stage").count, 1u);
}

TEST(Span, WallClockDurationIsRecorded) {
  Registry reg;
  {
    Span span{&reg, "stage"};
    // Burn a little real time so wall_ns is observably nonzero.
    volatile unsigned sink = 0;
    for (unsigned i = 0; i < 100000; ++i) sink = sink + i;
  }
  EXPECT_GT(reg.spans().at("stage").wall_ns, 0u);
}

}  // namespace
}  // namespace scent::telemetry
