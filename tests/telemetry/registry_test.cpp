// Counter/gauge/histogram semantics of telemetry::Registry.
#include "telemetry/metrics.h"

#include <gtest/gtest.h>

namespace scent::telemetry {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, LastWriteWinsAndSigned) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(7);
  g.set(-3);
  EXPECT_EQ(g.value(), -3);
  g.add(5);
  EXPECT_EQ(g.value(), 2);
  g.set_u64(123);
  EXPECT_EQ(g.value(), 123);
}

TEST(Histogram, BucketsAreValueLeBoundWithOverflow) {
  Histogram h{{10, 100}};
  h.observe(0);
  h.observe(10);    // boundary lands in the le10 bucket
  h.observe(11);
  h.observe(100);
  h.observe(101);   // overflow
  ASSERT_EQ(h.buckets().size(), 3u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 100 + 101);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 101u);
  EXPECT_DOUBLE_EQ(h.mean(), 222.0 / 5.0);
}

TEST(Histogram, EmptyHistogramHasZeroStats) {
  Histogram h{{1, 2}};
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Registry, InstrumentsAreCreatedOnFirstLookupAndStable) {
  Registry reg;
  Counter& c1 = reg.counter("probe.sent");
  c1.add(5);
  // Same name returns the same cell; creating other instruments must not
  // move it (hot-path callers cache the pointer).
  Counter* address = &c1;
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i));
  }
  Counter& c2 = reg.counter("probe.sent");
  EXPECT_EQ(&c2, address);
  EXPECT_EQ(c2.value(), 5u);
}

TEST(Registry, FindReturnsNullForMissingInstruments) {
  Registry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  reg.counter("yes").inc();
  ASSERT_NE(reg.find_counter("yes"), nullptr);
  EXPECT_EQ(reg.find_counter("yes")->value(), 1u);
}

TEST(Registry, HistogramBoundsConsultedOnlyOnFirstCreation) {
  Registry reg;
  Histogram& h = reg.histogram("x", {5, 50});
  ASSERT_EQ(h.bounds().size(), 2u);
  // A second lookup with different bounds returns the original histogram.
  Histogram& again = reg.histogram("x", {1, 2, 3, 4});
  EXPECT_EQ(&again, &h);
  EXPECT_EQ(again.bounds().size(), 2u);
}

TEST(Registry, DefaultHistogramBoundsAreDecades) {
  Registry reg;
  const Histogram& h = reg.histogram("y");
  ASSERT_EQ(h.bounds().size(), 7u);
  EXPECT_EQ(h.bounds().front(), 1u);
  EXPECT_EQ(h.bounds().back(), 1000000u);
}

TEST(Registry, ResetDropsInstrumentsButKeepsClock) {
  sim::VirtualClock clock{42};
  Registry reg;
  reg.set_clock(&clock);
  reg.counter("a").inc();
  reg.gauge("b").set(1);
  reg.histogram("c").observe(1);
  reg.span_begin("s");
  reg.span_end(1, 1);
  reg.reset();
  EXPECT_EQ(reg.find_counter("a"), nullptr);
  EXPECT_TRUE(reg.counters().empty());
  EXPECT_TRUE(reg.gauges().empty());
  EXPECT_TRUE(reg.histograms().empty());
  EXPECT_TRUE(reg.spans().empty());
  EXPECT_EQ(reg.clock(), &clock);
}

}  // namespace
}  // namespace scent::telemetry
