// Bounded-queue unit suite (TSan leg: every TEST name here starts with
// "Pipeline" so scripts/check.sh's `ctest -R '^(Engine|Pipeline)'` runs it
// under -fsanitize=thread).
//
// The queue is the pipeline's only shared state, so its contract carries
// the whole §5i scheduler: push blocks at capacity (backpressure), pop
// drains after close, close wakes every blocked thread, and the ledger
// counts what actually moved.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "pipeline/queue.h"

namespace scent::pipeline {
namespace {

TEST(PipelineQueue, FifoWithinCapacity) {
  BoundedQueue<int> q{4};
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 4u);
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(PipelineQueue, ZeroCapacityIsPromotedToOne) {
  // A 0-slot rendezvous would deadlock a blocking push against a blocking
  // pop; the constructor promotes it.
  BoundedQueue<int> q{0};
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.push(7));
  int out = 0;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 7);
}

TEST(PipelineQueue, TryPushRefusesWhenFullTryPopWhenEmpty) {
  BoundedQueue<int> q{1};
  int item = 1;
  EXPECT_TRUE(q.try_push(item));
  int refused = 2;
  EXPECT_FALSE(q.try_push(refused));
  EXPECT_EQ(refused, 2);  // left intact
  int out = 0;
  EXPECT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(q.try_pop(out));
}

TEST(PipelineQueue, PushBlocksAtCapacityUntilConsumerMakesRoom) {
  BoundedQueue<int> q{2};
  ASSERT_TRUE(q.push(0));
  ASSERT_TRUE(q.push(1));

  std::atomic<bool> third_pushed{false};
  std::thread producer{[&] {
    ASSERT_TRUE(q.push(2));  // must block: queue is full
    third_pushed.store(true);
  }};
  // The producer cannot complete until a pop frees a slot. Give it ample
  // time to block (a scheduling hint, not a correctness dependency — the
  // assertion below is what the test stands on).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(q.size(), 2u);

  int out = -1;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 0);
  producer.join();
  EXPECT_TRUE(third_pushed.load());

  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);

  // Backpressure left its mark in the ledger.
  const QueueStats stats = q.stats();
  EXPECT_EQ(stats.pushed, 3u);
  EXPECT_EQ(stats.popped, 3u);
  EXPECT_GT(stats.push_stall_ns, 0u);
  EXPECT_EQ(stats.high_water, 2u);
}

TEST(PipelineQueue, PopBlocksOnEmptyUntilProducerDelivers) {
  BoundedQueue<int> q{2};
  std::atomic<bool> got{false};
  std::thread consumer{[&] {
    int out = 0;
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, 42);
    got.store(true);
  }};
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(got.load());
  ASSERT_TRUE(q.push(42));
  consumer.join();
  EXPECT_TRUE(got.load());
  EXPECT_GT(q.stats().pop_stall_ns, 0u);
}

TEST(PipelineQueue, ProducerFasterThanConsumer) {
  // A fast producer against a slow consumer: capacity bounds the in-flight
  // depth, nothing is lost, order is preserved.
  BoundedQueue<int> q{3};
  constexpr int kItems = 2000;
  std::thread producer{[&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.push(i));
    q.close();
  }};
  std::vector<int> seen;
  int out = 0;
  while (q.pop(out)) {
    seen.push_back(out);
    if ((out & 0x3F) == 0) std::this_thread::yield();  // drag the consumer
  }
  producer.join();
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(seen[i], i);
  EXPECT_LE(q.stats().high_water, 3u);
}

TEST(PipelineQueue, ConsumerFasterThanProducer) {
  BoundedQueue<int> q{3};
  constexpr int kItems = 500;
  std::thread producer{[&] {
    for (int i = 0; i < kItems; ++i) {
      ASSERT_TRUE(q.push(i));
      if ((i & 0x1F) == 0) std::this_thread::yield();  // drag the producer
    }
    q.close();
  }};
  std::vector<int> seen;
  int out = 0;
  while (q.pop(out)) seen.push_back(out);
  producer.join();
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(seen[i], i);
}

TEST(PipelineQueue, CloseDrainsBufferedItemsThenEndsStream) {
  BoundedQueue<int> q{4};
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(3));  // refused after close
  int out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.pop(out));  // drained: end of stream
  EXPECT_FALSE(q.try_pop(out));
  q.close();  // idempotent
}

TEST(PipelineQueue, CloseWakesBlockedPusher) {
  BoundedQueue<int> q{1};
  ASSERT_TRUE(q.push(0));
  std::atomic<bool> refused{false};
  std::thread producer{[&] {
    EXPECT_FALSE(q.push(1));  // blocks full, then close() refuses it
    refused.store(true);
  }};
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
  EXPECT_TRUE(refused.load());
  // The refused item never entered the ledger.
  EXPECT_EQ(q.stats().pushed, 1u);
}

TEST(PipelineQueue, CloseWakesBlockedPopper) {
  BoundedQueue<int> q{1};
  std::atomic<bool> ended{false};
  std::thread consumer{[&] {
    int out = 0;
    EXPECT_FALSE(q.pop(out));  // blocks empty, then close() ends the stream
    ended.store(true);
  }};
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
  EXPECT_TRUE(ended.load());
}

TEST(PipelineQueue, MoveOnlyPayloadsMoveThrough) {
  BoundedQueue<std::unique_ptr<int>> q{2};
  ASSERT_TRUE(q.push(std::make_unique<int>(5)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 5);
}

}  // namespace
}  // namespace scent::pipeline
