// Stage-executor unit suite (TSan leg: names start with "Pipeline").
//
// Lifecycle contract of pipeline::Pipeline: stages run concurrently and
// all join before run() returns; the first failure fires the cancel hooks
// exactly once; after the join the first *non-cancelled* failure in stage
// order decides the rethrown exception, with PipelineCancelled surfacing
// only when nothing real went wrong.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "pipeline/pipeline.h"
#include "pipeline/queue.h"

namespace scent::pipeline {
namespace {

TEST(PipelineExecutor, RunsEveryStageAndRecordsMetrics) {
  Pipeline p;
  std::atomic<int> ran{0};
  p.add_stage("a", [&] { ++ran; });
  p.add_stage("b", [&] { ++ran; });
  p.add_stage("c", [&] { ++ran; });
  p.run();
  EXPECT_EQ(ran.load(), 3);
  ASSERT_EQ(p.metrics().size(), 3u);
  EXPECT_EQ(p.metrics()[0].name, "a");
  EXPECT_EQ(p.metrics()[2].name, "c");
  for (const StageMetrics& m : p.metrics()) {
    EXPECT_FALSE(m.failed);
    EXPECT_FALSE(m.cancelled);
  }
}

TEST(PipelineExecutor, SingleStageRunsInlineOnCallingThread) {
  Pipeline p;
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id stage_thread;
  p.add_stage("only", [&] { stage_thread = std::this_thread::get_id(); });
  p.run();
  EXPECT_EQ(stage_thread, caller);
}

TEST(PipelineExecutor, StagesRunConcurrently) {
  // Two stages that can only complete together: a rendezvous through a
  // queue in each direction. Serial execution would deadlock; the test
  // completing at all is the assertion.
  Pipeline p;
  BoundedQueue<int> ping{1};
  BoundedQueue<int> pong{1};
  p.add_stage("ping", [&] {
    ASSERT_TRUE(ping.push(1));
    int got = 0;
    ASSERT_TRUE(pong.pop(got));
    EXPECT_EQ(got, 2);
  });
  p.add_stage("pong", [&] {
    int got = 0;
    ASSERT_TRUE(ping.pop(got));
    EXPECT_EQ(got, 1);
    ASSERT_TRUE(pong.push(2));
  });
  p.run();
}

TEST(PipelineExecutor, FirstFailureFiresCancelHooksExactlyOnce) {
  Pipeline p;
  std::atomic<int> fired{0};
  p.on_cancel([&] { ++fired; });
  p.on_cancel([&] { ++fired; });
  p.add_stage("fail1", [] { throw std::runtime_error{"one"}; });
  p.add_stage("fail2", [] { throw std::runtime_error{"two"}; });
  EXPECT_THROW(p.run(), std::runtime_error);
  // Both hooks ran, but the pair fired once despite two failing stages.
  EXPECT_EQ(fired.load(), 2);
}

TEST(PipelineExecutor, RethrowsFirstFailureInStageOrderNotTimeOrder) {
  // The later-added stage fails immediately; the earlier one fails after a
  // delay. Stage order must still decide the exception.
  Pipeline p;
  p.add_stage("slow-loser", [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    throw std::runtime_error{"first-in-stage-order"};
  });
  p.add_stage("fast-loser", [] { throw std::logic_error{"first-in-time"}; });
  try {
    p.run();
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first-in-stage-order");
  }
  EXPECT_TRUE(p.metrics()[0].failed);
  EXPECT_TRUE(p.metrics()[1].failed);
}

TEST(PipelineExecutor, CancelledStagesDoNotMaskTheRealError) {
  // Consumer blocks on a queue the failing producer never feeds; the
  // cancel hook closes it, the consumer unwinds with PipelineCancelled —
  // and run() still reports the producer's error even though the consumer
  // (stage 0, earlier in stage order) also "failed".
  Pipeline p;
  BoundedQueue<int> q{1};
  p.on_cancel([&] { q.close(); });
  p.add_stage("consumer", [&] {
    int out = 0;
    if (!q.pop(out)) throw PipelineCancelled{};
  });
  p.add_stage("producer", [] { throw std::runtime_error{"real"}; });
  try {
    p.run();
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "real");
  }
  EXPECT_TRUE(p.metrics()[0].cancelled);
  EXPECT_TRUE(p.metrics()[1].failed);
  EXPECT_FALSE(p.metrics()[1].cancelled);
}

TEST(PipelineExecutor, PureCancellationSurfacesWhenNothingElseFailed) {
  Pipeline p;
  p.add_stage("cancelled", [] { throw PipelineCancelled{}; });
  p.add_stage("fine", [] {});
  EXPECT_THROW(p.run(), PipelineCancelled);
  EXPECT_TRUE(p.metrics()[0].cancelled);
  EXPECT_FALSE(p.metrics()[1].failed);
}

TEST(PipelineExecutor, ChainMovesDataEndToEnd) {
  // A miniature of the sweep topology: producer -> transform -> sink over
  // tiny queues, each producing stage closing its output on exit.
  Pipeline p;
  BoundedQueue<int> a{2};
  BoundedQueue<int> b{2};
  p.on_cancel([&] {
    a.close();
    b.close();
  });
  constexpr int kItems = 200;
  long long sum = 0;
  p.add_stage("produce", [&] {
    for (int i = 1; i <= kItems; ++i) ASSERT_TRUE(a.push(i));
    a.close();
  });
  p.add_stage("double", [&] {
    int v = 0;
    while (a.pop(v)) ASSERT_TRUE(b.push(2 * v));
    b.close();
  });
  p.add_stage("sum", [&] {
    int v = 0;
    while (b.pop(v)) sum += v;
  });
  p.run();
  EXPECT_EQ(sum, 2LL * kItems * (kItems + 1) / 2);
  for (const StageMetrics& m : p.metrics()) EXPECT_FALSE(m.failed);
}

TEST(PipelineExecutor, FailingConsumerUnblocksBackpressuredProducer) {
  // Producer outruns a 1-slot queue and blocks; the consumer dies. The
  // cancel hook closes the queue, push() returns false, the producer
  // unwinds with PipelineCancelled, and the consumer's real error wins —
  // the no-deadlock half of the failure policy.
  Pipeline p;
  BoundedQueue<int> q{1};
  p.on_cancel([&] { q.close(); });
  p.add_stage("producer", [&] {
    for (int i = 0; i < 1000000; ++i) {
      if (!q.push(i)) throw PipelineCancelled{};
    }
  });
  p.add_stage("consumer", [&] {
    int out = 0;
    ASSERT_TRUE(q.pop(out));
    throw std::runtime_error{"consumer died"};
  });
  try {
    p.run();
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "consumer died");
  }
  EXPECT_TRUE(p.metrics()[0].cancelled);
}

}  // namespace
}  // namespace scent::pipeline
