// Streamed-scheduler determinism suite (TSan leg: names start with
// "Pipeline").
//
// The §5i contract: SweepOptions::pipeline / CampaignOptions::pipeline is
// purely a wall-clock knob. At every thread count, the streamed scheduler
// must reproduce the barrier scheduler's corpus byte for byte — every
// observation field, the snapshot writer's encoded bytes, the fused
// analysis AggregateTable, the day accounting, and the sweep lanes'
// virtual-timestamp trace streams. Each cell is checked against a
// barrier threads=1 reference built from an independently constructed
// identical world.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/engine.h"
#include "core/bootstrap.h"
#include "core/campaign.h"
#include "core/observation.h"
#include "core/sweep_ingest.h"
#include "corpus/snapshot.h"
#include "engine/sweep.h"
#include "netbase/prefix.h"
#include "probe/prober.h"
#include "sim/scenario.h"
#include "sim/sim_time.h"
#include "trace/recorder.h"

namespace scent {
namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& tag) {
    path = std::string{::testing::TempDir()} + "/scent_pipe_" + tag + "_" +
           std::to_string(::getpid());
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

std::vector<char> file_bytes(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>{std::istreambuf_iterator<char>{in},
                           std::istreambuf_iterator<char>{}};
}

void expect_same_corpus(const core::ObservationStore& want,
                        const core::ObservationStore& got) {
  ASSERT_EQ(want.size(), got.size());
  const auto& a = want.all();
  const auto& b = got.all();
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].target, b[i].target) << "observation " << i;
    ASSERT_EQ(a[i].response, b[i].response) << "observation " << i;
    ASSERT_EQ(a[i].type, b[i].type) << "observation " << i;
    ASSERT_EQ(a[i].code, b[i].code) << "observation " << i;
    ASSERT_EQ(a[i].time, b[i].time) << "observation " << i;
  }
  EXPECT_EQ(want.unique_responses(), got.unique_responses());
  EXPECT_EQ(want.unique_eui64_iids(), got.unique_eui64_iids());
}

/// Field-by-field AggregateTable equality, including device iteration
/// order (MAC first-sighting order) and per-AS span order (first-
/// attribution order) — the properties the shard merge must preserve.
void expect_same_table(const analysis::AggregateTable& want,
                       const analysis::AggregateTable& got) {
  EXPECT_EQ(want.rows_scanned, got.rows_scanned);
  EXPECT_EQ(want.eui_rows, got.eui_rows);
  ASSERT_EQ(want.devices.size(), got.devices.size());
  auto it_want = want.devices.begin();
  auto it_got = got.devices.begin();
  for (; it_want != want.devices.end(); ++it_want, ++it_got) {
    ASSERT_EQ(it_want->first, it_got->first) << "device order diverged";
    const analysis::DeviceAggregate& a = it_want->second;
    const analysis::DeviceAggregate& b = it_got->second;
    EXPECT_EQ(a.oui, b.oui);
    EXPECT_EQ(a.observations, b.observations);
    EXPECT_EQ(a.target_lo, b.target_lo);
    EXPECT_EQ(a.target_hi, b.target_hi);
    EXPECT_EQ(a.response_lo, b.response_lo);
    EXPECT_EQ(a.response_hi, b.response_hi);
    EXPECT_EQ(a.first_day, b.first_day);
    EXPECT_EQ(a.last_day, b.last_day);
    EXPECT_EQ(a.day_bits, b.day_bits);
    ASSERT_EQ(a.sightings.size(), b.sightings.size());
    for (std::size_t i = 0; i < a.sightings.size(); ++i) {
      EXPECT_EQ(a.sightings[i].day, b.sightings[i].day);
      EXPECT_EQ(a.sightings[i].network, b.sightings[i].network);
    }
    ASSERT_EQ(a.per_as.size(), b.per_as.size());
    for (std::size_t i = 0; i < a.per_as.size(); ++i) {
      EXPECT_EQ(a.per_as[i].asn, b.per_as[i].asn) << "span order diverged";
      EXPECT_EQ(a.per_as[i].target_lo, b.per_as[i].target_lo);
      EXPECT_EQ(a.per_as[i].target_hi, b.per_as[i].target_hi);
      EXPECT_EQ(a.per_as[i].response_lo, b.per_as[i].response_lo);
      EXPECT_EQ(a.per_as[i].response_hi, b.per_as[i].response_hi);
      EXPECT_EQ(a.per_as[i].observations, b.per_as[i].observations);
      EXPECT_TRUE(a.per_as[i].days == b.per_as[i].days);
    }
  }
  ASSERT_EQ(want.as_rollups.size(), got.as_rollups.size());
  for (std::size_t i = 0; i < want.as_rollups.size(); ++i) {
    EXPECT_EQ(want.as_rollups[i].asn, got.as_rollups[i].asn);
    EXPECT_EQ(want.as_rollups[i].devices, got.as_rollups[i].devices);
    EXPECT_EQ(want.as_rollups[i].observations,
              got.as_rollups[i].observations);
  }
}

/// The trace determinism key: everything but wall_ns, concatenated over
/// every lane whose name starts with `prefix`, in drain order.
using VirtualEvent =
    std::tuple<std::string, trace::EventType, std::int64_t, std::int64_t>;

std::vector<VirtualEvent> virtual_stream(const trace::TraceCollector& collector,
                                         std::string_view prefix) {
  std::vector<VirtualEvent> out;
  for (const auto& lane : collector.lanes()) {
    if (lane.name.rfind(prefix, 0) != 0) continue;
    for (const auto& e : lane.events) {
      out.emplace_back(std::string{e.name}, e.type, e.virtual_us, e.value);
    }
  }
  return out;
}

bool has_lane(const trace::TraceCollector& collector, std::string_view name) {
  for (const auto& lane : collector.lanes()) {
    if (lane.name == name) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Sweep-level: one sweep with the full fan-out, every consumer compared.

struct SweptDay {
  core::ObservationStore store;
  analysis::AggregateTable table;
  container::FlatSet<net::MacAddress, net::MacAddressHash> macs;
  std::vector<char> snapshot_bytes;
  std::size_t progress_calls = 0;
  std::size_t final_rows = 0;
  trace::TraceCollector collector{1 << 12};
};

std::vector<engine::SweepUnit> tiny_units(const sim::PaperWorld& world,
                                          std::size_t count) {
  const auto& pool = world.internet.provider(world.versatel).pools()[0];
  std::vector<engine::SweepUnit> units;
  for (std::uint64_t i = 0; i < count; ++i) {
    const net::Prefix p48{
        pool.config().prefix.subnet(48, net::Uint128{i % 4}).base(), 48};
    units.push_back({p48, 56, 0x5CE7 + i});
  }
  return units;
}

std::unique_ptr<SweptDay> sweep_once(bool pipelined, unsigned threads,
                                     std::uint32_t queue_capacity,
                                     std::uint32_t batch_rows,
                                     const std::string& tag) {
  sim::PaperWorld world = sim::make_tiny_world(0x9A9A, 48);
  sim::VirtualClock clock{sim::hours(12)};
  probe::ProberOptions prober_options;
  prober_options.wire_mode = false;
  prober_options.packets_per_second = 1000000;

  auto day = std::make_unique<SweptDay>();
  engine::SweepOptions options;
  options.threads = threads;
  options.oversubscribe = true;
  options.pipeline = pipelined;
  options.queue_capacity = queue_capacity;
  options.batch_rows = batch_rows;
  options.trace = &day->collector;

  corpus::SnapshotWriter snapshot;
  core::SweepAnalysis analysis;
  analysis.bgp = &world.internet.bgp();
  analysis.options.threads = threads;
  analysis.options.oversubscribe = true;

  core::SweepFanout fanout;
  fanout.snapshot = &snapshot;
  fanout.analysis = &analysis;
  fanout.macs = &day->macs;
  fanout.on_progress = [&day](std::size_t rows) {
    ++day->progress_calls;
    day->final_rows = rows;
  };

  const auto units = tiny_units(world, 12);
  core::sweep_into_store(world.internet, clock, units, prober_options,
                         options, day->store, fanout);
  day->table = std::move(analysis.table);

  TempDir dir{tag};
  const std::string snap_path = dir.path + "/day.snap";
  EXPECT_TRUE(snapshot.write(snap_path));
  day->snapshot_bytes = file_bytes(snap_path);
  EXPECT_EQ(day->collector.total_dropped(), 0u);
  return day;
}

TEST(PipelineEquivalence, StreamedSweepFanoutMatchesBarrierAtAnyThreadCount) {
  const auto reference = sweep_once(false, 1, 16, 4096, "ref");
  ASSERT_GT(reference->store.size(), 0u);
  ASSERT_GT(reference->table.devices.size(), 0u);
  ASSERT_FALSE(reference->macs.empty());
  EXPECT_EQ(reference->progress_calls, 1u);  // barrier: once, post-merge
  EXPECT_EQ(reference->final_rows, reference->store.size());
  const auto reference_sweep =
      virtual_stream(reference->collector, "sweep shard");
  ASSERT_FALSE(reference_sweep.empty());

  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(testing::Message() << "pipeline threads=" << threads);
    const auto streamed = sweep_once(true, threads, 4, 256,
                                     "pipe" + std::to_string(threads));
    expect_same_corpus(reference->store, streamed->store);
    EXPECT_EQ(reference->snapshot_bytes, streamed->snapshot_bytes);
    expect_same_table(reference->table, streamed->table);
    EXPECT_EQ(reference->macs.size(), streamed->macs.size());
    for (const auto& mac : reference->macs) {
      EXPECT_TRUE(streamed->macs.contains(mac));
    }
    // The drain reports cumulative rows batch by batch; the final call
    // must account for every row exactly once.
    EXPECT_GE(streamed->progress_calls, 1u);
    EXPECT_EQ(streamed->final_rows, reference->store.size());
    // "sweep shard s" lanes replay the serial virtual schedule unchanged;
    // the streamed scheduler adds its own stage lanes alongside them.
    EXPECT_EQ(virtual_stream(streamed->collector, "sweep shard"),
              reference_sweep);
    EXPECT_TRUE(has_lane(streamed->collector, "pipeline ingest"));
    EXPECT_TRUE(has_lane(streamed->collector, "pipeline shard 0"));
  }
}

TEST(PipelineEquivalence, TinyQueuesAndBatchesStillBitIdentical) {
  // Worst-case backpressure: 1-slot queues, 1-row batches. Every handoff
  // blocks; the bytes must not care.
  const auto reference = sweep_once(false, 1, 16, 4096, "ref2");
  const auto streamed = sweep_once(true, 4, 1, 1, "tiny");
  expect_same_corpus(reference->store, streamed->store);
  EXPECT_EQ(reference->snapshot_bytes, streamed->snapshot_bytes);
  expect_same_table(reference->table, streamed->table);
}

// ---------------------------------------------------------------------------
// Campaign-level: full bootstrap + checkpointed campaign, streamed vs
// barrier, across worlds x seeds x thread counts.

enum class Scenario { kPaperWorld, kChurn };

sim::Internet make_world(Scenario scenario, std::uint64_t seed) {
  if (scenario == Scenario::kPaperWorld) {
    sim::PaperWorldOptions options;
    options.seed = seed;
    options.tail_as_count = 2;
    // No TSan shrink here: below scale 0.05 the bootstrap's rotating /48s
    // can rotate empty by campaign time (seed 0x11 yields a zero-response
    // campaign at 0.03). TSan cost is bounded by the seed/thread/day
    // shrink instead.
    options.scale = 0.05;
    options.devices_per_tail_pool = 16;
    options.versatel_pool_count = 2;
    options.inject_pathologies = true;
    return std::move(sim::make_paper_world(options).internet);
  }
  // Same churn world as the engine equivalence suite: a stride-rotator and
  // a static allocator with mid-campaign service churn.
  sim::WorldBuilder builder{seed};
  {
    sim::ProviderSpec spec;
    spec.asn = 65201;
    spec.name = "PipeRotator";
    spec.country = "DE";
    spec.advertisement = *net::Prefix::parse("2001:3333::/32");
    spec.vendors = {{net::Oui{0x3810d5}, 1.0}};
    sim::PoolSpec pool;
    pool.pool_length = 48;
    pool.allocation_length = 56;
    pool.rotation.kind = sim::RotationPolicy::Kind::kStride;
    pool.rotation.stride = 97;
    pool.device_count = 200;
    spec.pools = {pool};
    spec.eui64_fraction = 0.9;
    spec.churn_fraction = 0.35;
    builder.add_provider(spec);
  }
  {
    sim::ProviderSpec spec;
    spec.asn = 65202;
    spec.name = "PipeStatic";
    spec.country = "VN";
    spec.advertisement = *net::Prefix::parse("2001:4444::/32");
    spec.vendors = {{net::Oui{0x98f428}, 1.0}};
    sim::PoolSpec pool;
    pool.pool_length = 48;
    pool.allocation_length = 60;
    pool.device_count = kTsan ? 400 : 1000;
    spec.pools = {pool};
    spec.eui64_fraction = 0.8;
    spec.churn_fraction = 0.5;
    builder.add_provider(spec);
  }
  return builder.take();
}

struct CampaignRun {
  core::BootstrapResult boot;
  core::CampaignResult campaign;
  std::vector<std::string> chain_files;       ///< Sorted file names.
  std::vector<std::vector<char>> chain_bytes; ///< Bytes per chain file.
};

CampaignRun run_campaign_world(Scenario scenario, std::uint64_t seed,
                               unsigned threads, bool pipelined,
                               const std::string& dir_tag) {
  sim::Internet internet = make_world(scenario, seed);
  sim::VirtualClock clock{sim::hours(10)};
  probe::ProberOptions prober_options;
  prober_options.wire_mode = false;
  prober_options.packets_per_second = 2000000;
  probe::Prober prober{internet, clock, prober_options};

  CampaignRun run;
  core::BootstrapOptions boot;
  boot.seed = seed ^ 0xF00D;
  boot.probes_per_48 = 4;
  boot.threads = threads;
  boot.oversubscribe = true;
  boot.pipeline = pipelined;
  boot.queue_capacity = 4;
  run.boot = core::run_bootstrap(internet, clock, prober, boot);

  TempDir dir{dir_tag};
  core::CampaignOptions campaign;
  campaign.days = kTsan ? 2 : 3;
  campaign.seed = seed ^ 0xCA3B;
  campaign.threads = threads;
  campaign.oversubscribe = true;
  campaign.pipeline = pipelined;
  campaign.queue_capacity = 4;
  campaign.checkpoint_dir = dir.path;
  run.campaign = core::run_campaign(internet, clock, prober,
                                    run.boot.rotating_48s, campaign);
  EXPECT_TRUE(run.campaign.checkpoint_ok);

  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    run.chain_files.push_back(entry.path().filename().string());
  }
  std::sort(run.chain_files.begin(), run.chain_files.end());
  for (const auto& name : run.chain_files) {
    run.chain_bytes.push_back(file_bytes(dir.path + "/" + name));
  }
  return run;
}

void expect_same_campaign(const CampaignRun& want, const CampaignRun& got) {
  EXPECT_EQ(want.boot.rotating_48s, got.boot.rotating_48s);
  EXPECT_EQ(want.boot.probes_sent, got.boot.probes_sent);
  EXPECT_EQ(want.boot.unique_iids, got.boot.unique_iids);
  expect_same_corpus(want.boot.observations, got.boot.observations);

  EXPECT_EQ(want.campaign.probes_sent, got.campaign.probes_sent);
  EXPECT_EQ(want.campaign.responses, got.campaign.responses);
  EXPECT_EQ(want.campaign.allocation_length_by_as,
            got.campaign.allocation_length_by_as);
  ASSERT_EQ(want.campaign.daily.size(), got.campaign.daily.size());
  for (std::size_t d = 0; d < want.campaign.daily.size(); ++d) {
    EXPECT_EQ(want.campaign.daily[d].probes, got.campaign.daily[d].probes);
    EXPECT_EQ(want.campaign.daily[d].responses,
              got.campaign.daily[d].responses);
    EXPECT_EQ(want.campaign.daily[d].unique_eui64_iids,
              got.campaign.daily[d].unique_eui64_iids);
  }
  expect_same_corpus(want.campaign.observations, got.campaign.observations);

  // The on-disk snapshot chain + manifest: byte-identical, file by file.
  ASSERT_EQ(want.chain_files, got.chain_files);
  for (std::size_t i = 0; i < want.chain_files.size(); ++i) {
    EXPECT_EQ(want.chain_bytes[i], got.chain_bytes[i])
        << "chain file " << want.chain_files[i];
  }
}

TEST(PipelineEquivalence, StreamedCampaignMatchesBarrierAcrossWorldsAndSeeds) {
  const std::vector<std::uint64_t> seeds =
      kTsan ? std::vector<std::uint64_t>{0x11}
            : std::vector<std::uint64_t>{0x11, 0x22, 0x33};
  const std::vector<unsigned> thread_counts =
      kTsan ? std::vector<unsigned>{2, 8}
            : std::vector<unsigned>{1, 2, 4, 8};

  for (const Scenario scenario : {Scenario::kPaperWorld, Scenario::kChurn}) {
    for (const std::uint64_t seed : seeds) {
      SCOPED_TRACE(testing::Message()
                   << (scenario == Scenario::kPaperWorld ? "paper_world"
                                                         : "churn")
                   << " seed=0x" << std::hex << seed);
      const CampaignRun reference =
          run_campaign_world(scenario, seed, 1, false, "ref");
      ASSERT_FALSE(reference.boot.rotating_48s.empty());
      ASSERT_GT(reference.campaign.observations.size(), 0u);

      for (const unsigned threads : thread_counts) {
        SCOPED_TRACE(testing::Message() << "threads=" << threads);
        const CampaignRun streamed = run_campaign_world(
            scenario, seed, threads, true, "p" + std::to_string(threads));
        expect_same_campaign(reference, streamed);
      }
    }
  }
}

TEST(PipelineEquivalence, MidDayAbortResumesBitIdentically) {
  // Kill a streamed campaign while day 1 is mid-drain (nothing about the
  // day committed yet), resume from the surviving chain, and demand the
  // final corpus + chain match an uninterrupted run. The §5f contract's
  // mid-day half: a partially drained day leaves no trace.
  const std::uint64_t seed = 0x77;
  const unsigned threads = kTsan ? 2 : 4;

  sim::Internet aborted_world = make_world(Scenario::kChurn, seed);
  sim::VirtualClock aborted_clock{sim::hours(10)};
  probe::ProberOptions prober_options;
  prober_options.wire_mode = false;
  prober_options.packets_per_second = 2000000;

  core::BootstrapOptions boot;
  boot.seed = seed ^ 0xF00D;
  boot.probes_per_48 = 4;
  boot.threads = threads;
  boot.oversubscribe = true;
  boot.pipeline = true;

  TempDir dir{"abort"};
  core::CampaignOptions campaign;
  campaign.days = 3;
  campaign.seed = seed ^ 0xCA3B;
  campaign.threads = threads;
  campaign.oversubscribe = true;
  campaign.pipeline = true;
  campaign.queue_capacity = 2;
  campaign.checkpoint_dir = dir.path;

  struct MidDayAbort : std::runtime_error {
    MidDayAbort() : std::runtime_error{"mid-day abort"} {}
  };

  std::vector<net::Prefix> targets;
  {
    probe::Prober prober{aborted_world, aborted_clock, prober_options};
    const auto booted =
        core::run_bootstrap(aborted_world, aborted_clock, prober, boot);
    targets = booted.rotating_48s;
    ASSERT_FALSE(targets.empty());

    // The campaign's absolute day index depends on how far bootstrap
    // advanced the clock; abort relative to the first day seen.
    core::CampaignOptions abort_options = campaign;
    std::int64_t first_seen = -1;
    abort_options.on_day_progress = [&first_seen](std::int64_t day,
                                                  std::size_t rows) {
      if (first_seen < 0) first_seen = day;
      if (day > first_seen && rows > 0) throw MidDayAbort{};
    };
    EXPECT_THROW(core::run_campaign(aborted_world, aborted_clock, prober,
                                    targets, abort_options),
                 MidDayAbort);
  }
  // Day 0 committed before the abort; day 1 must not have.
  ASSERT_TRUE(std::filesystem::exists(dir.path + "/day_0000.snap"));
  ASSERT_FALSE(std::filesystem::exists(dir.path + "/day_0001.snap"));

  // Resume in a fresh process-equivalent: new world, new clock, same dir.
  core::CampaignResult resumed;
  {
    sim::Internet world = make_world(Scenario::kChurn, seed);
    sim::VirtualClock clock{sim::hours(10)};
    probe::Prober prober{world, clock, prober_options};
    const auto booted = core::run_bootstrap(world, clock, prober, boot);
    ASSERT_EQ(booted.rotating_48s, targets);
    resumed = core::run_campaign(world, clock, prober, targets, campaign);
  }
  EXPECT_EQ(resumed.resumed_days, 1u);

  // Uninterrupted reference, own directory.
  TempDir whole_dir{"whole"};
  core::CampaignResult whole;
  {
    sim::Internet world = make_world(Scenario::kChurn, seed);
    sim::VirtualClock clock{sim::hours(10)};
    probe::Prober prober{world, clock, prober_options};
    const auto booted = core::run_bootstrap(world, clock, prober, boot);
    core::CampaignOptions whole_options = campaign;
    whole_options.checkpoint_dir = whole_dir.path;
    whole = core::run_campaign(world, clock, prober, targets, whole_options);
  }

  expect_same_corpus(whole.observations, resumed.observations);
  EXPECT_EQ(whole.allocation_length_by_as, resumed.allocation_length_by_as);
  ASSERT_EQ(whole.daily.size(), resumed.daily.size());
  for (std::size_t d = 0; d < whole.daily.size(); ++d) {
    EXPECT_EQ(whole.daily[d].probes, resumed.daily[d].probes);
    EXPECT_EQ(whole.daily[d].unique_eui64_iids,
              resumed.daily[d].unique_eui64_iids);
  }
  for (const auto& entry :
       std::filesystem::directory_iterator(whole_dir.path)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(file_bytes(whole_dir.path + "/" + name),
              file_bytes(dir.path + "/" + name))
        << "chain file " << name;
  }
}

}  // namespace
}  // namespace scent
