// Pipeline stress suite — the TSan target for the queue/executor layer
// (names start with "Pipeline" so scripts/check.sh's
// `ctest -R '^(Engine|Pipeline)'` runs these under -fsanitize=thread).
//
// Everything here hammers the shared state from many threads at once:
// deep chains over 1-slot queues, concurrent close() against blocked
// pushers and poppers, repeated cancel storms. The assertions are mostly
// conservation laws (every item pushed is popped exactly once); under
// TSan the interleavings themselves are the test.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "pipeline/pipeline.h"
#include "pipeline/queue.h"

namespace scent::pipeline {
namespace {

TEST(PipelineStress, DeepChainOverOneSlotQueuesConservesEveryItem) {
  // 6 stages, 1-slot queues: maximal backpressure, constant handoffs.
  constexpr int kStages = 6;
  constexpr int kItems = 5000;
  std::vector<std::unique_ptr<BoundedQueue<int>>> queues;
  for (int i = 0; i < kStages - 1; ++i) {
    queues.push_back(std::make_unique<BoundedQueue<int>>(1));
  }
  Pipeline p;
  p.add_stage("source", [&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(queues[0]->push(i));
    queues[0]->close();
  });
  for (int s = 1; s < kStages - 1; ++s) {
    p.add_stage("relay", [&, s] {
      int v = 0;
      while (queues[s - 1]->pop(v)) ASSERT_TRUE(queues[s]->push(v));
      queues[s]->close();
    });
  }
  long long sum = 0;
  std::int64_t count = 0;
  p.add_stage("sink", [&] {
    int v = 0;
    while (queues[kStages - 2]->pop(v)) {
      sum += v;
      ++count;
    }
  });
  p.run();
  EXPECT_EQ(count, kItems);
  EXPECT_EQ(sum, static_cast<long long>(kItems) * (kItems - 1) / 2);
}

TEST(PipelineStress, ManyProducersOneConsumerThroughOneQueue) {
  // The queue's lock covers MPSC too (the fan-in the topology never
  // builds today but the primitive promises).
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> q{4};
  std::atomic<int> live{kProducers};
  Pipeline p;
  for (int i = 0; i < kProducers; ++i) {
    p.add_stage("producer", [&] {
      for (int k = 0; k < kPerProducer; ++k) ASSERT_TRUE(q.push(1));
      if (live.fetch_sub(1) == 1) q.close();  // last producer out
    });
  }
  std::int64_t total = 0;
  p.add_stage("consumer", [&] {
    int v = 0;
    while (q.pop(v)) total += v;
  });
  p.run();
  EXPECT_EQ(total, kProducers * kPerProducer);
  EXPECT_EQ(q.stats().pushed, q.stats().popped);
}

TEST(PipelineStress, CloseRacesBlockedPushersAndPoppers) {
  // Threads park on both sides of a full/empty pair of queues; a third
  // thread closes both. Every blocked call must return false, promptly.
  for (int round = 0; round < 20; ++round) {
    BoundedQueue<int> full{1};
    BoundedQueue<int> empty{1};
    ASSERT_TRUE(full.push(0));
    std::vector<std::thread> threads;
    std::atomic<int> woken{0};
    for (int i = 0; i < 3; ++i) {
      threads.emplace_back([&] {
        if (!full.push(1)) ++woken;
      });
      threads.emplace_back([&] {
        int out = 0;
        if (!empty.pop(out)) ++woken;
      });
    }
    std::this_thread::yield();
    full.close();
    empty.close();
    for (auto& t : threads) t.join();
    EXPECT_EQ(woken.load(), 6) << "round " << round;
  }
}

TEST(PipelineStress, RepeatedCancelStormsNeitherDeadlockNorDoubleFire) {
  // A mid-chain stage dies at a random-ish depth while both neighbours
  // are blocked on it; the cancel hook must free everyone, every round.
  for (int round = 0; round < 25; ++round) {
    BoundedQueue<int> in{1};
    BoundedQueue<int> out{1};
    Pipeline p;
    std::atomic<int> cancel_fired{0};
    p.on_cancel([&] {
      ++cancel_fired;
      in.close();
      out.close();
    });
    p.add_stage("source", [&] {
      for (int i = 0;; ++i) {
        if (!in.push(i)) throw PipelineCancelled{};
      }
    });
    const int die_after = 1 + (round % 7);
    p.add_stage("doomed", [&] {
      int v = 0;
      for (int n = 0; in.pop(v); ++n) {
        if (n == die_after) throw std::runtime_error{"doomed"};
        if (!out.push(v)) throw PipelineCancelled{};
      }
      throw PipelineCancelled{};
    });
    p.add_stage("sink", [&] {
      int v = 0;
      while (out.pop(v)) {
      }
    });
    EXPECT_THROW(p.run(), std::runtime_error) << "round " << round;
    EXPECT_EQ(cancel_fired.load(), 1) << "round " << round;
  }
}

TEST(PipelineStress, StatsLedgerIsCoherentAfterHeavyTraffic) {
  BoundedQueue<std::uint64_t> q{3};
  constexpr std::uint64_t kItems = 20000;
  Pipeline p;
  p.add_stage("produce", [&] {
    for (std::uint64_t i = 0; i < kItems; ++i) ASSERT_TRUE(q.push(i));
    q.close();
  });
  std::uint64_t seen = 0;
  p.add_stage("consume", [&] {
    std::uint64_t v = 0;
    while (q.pop(v)) ++seen;
  });
  p.run();
  const QueueStats stats = q.stats();
  EXPECT_EQ(seen, kItems);
  EXPECT_EQ(stats.pushed, kItems);
  EXPECT_EQ(stats.popped, kItems);
  EXPECT_GE(stats.high_water, 1u);
  EXPECT_LE(stats.high_water, 3u);
}

}  // namespace
}  // namespace scent::pipeline
