// Tests for IPv6 address parsing, formatting, and field access.
#include "netbase/ipv6_address.h"

#include <gtest/gtest.h>

#include <string>

namespace scent::net {
namespace {

TEST(Ipv6Address, ParseFullForm) {
  const auto a = Ipv6Address::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->network(), 0x20010db800000000ULL);
  EXPECT_EQ(a->iid(), 1u);
}

TEST(Ipv6Address, ParseCompressedMiddle) {
  const auto a = Ipv6Address::parse("2001:db8::1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->network(), 0x20010db800000000ULL);
  EXPECT_EQ(a->iid(), 1u);
}

TEST(Ipv6Address, ParseAllZero) {
  const auto a = Ipv6Address::parse("::");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, Ipv6Address{});
}

TEST(Ipv6Address, ParseLeadingGap) {
  const auto a = Ipv6Address::parse("::ffff:1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->iid(), 0x00000000ffff0001ULL);
  EXPECT_EQ(a->network(), 0u);
}

TEST(Ipv6Address, ParseTrailingGap) {
  const auto a = Ipv6Address::parse("fe80::");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->network(), 0xfe80000000000000ULL);
  EXPECT_EQ(a->iid(), 0u);
}

TEST(Ipv6Address, ParseEui64Example) {
  // The paper's Figure 1 address shape.
  const auto a = Ipv6Address::parse("2001:16b8:2:300:3a10:d5ff:feaa:bbcc");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->iid(), 0x3a10d5fffeaabbccULL);
}

TEST(Ipv6Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv6Address::parse(""));
  EXPECT_FALSE(Ipv6Address::parse(":"));
  EXPECT_FALSE(Ipv6Address::parse(":::"));
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7"));        // 7 groups
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:8:9"));    // 9 groups
  EXPECT_FALSE(Ipv6Address::parse("12345::"));              // >4 digits
  EXPECT_FALSE(Ipv6Address::parse("g::1"));                 // bad hex
  EXPECT_FALSE(Ipv6Address::parse("1::2::3"));              // two gaps
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:8::"));    // gap elides 0
  EXPECT_FALSE(Ipv6Address::parse("::1%eth0"));             // zone id
  EXPECT_FALSE(Ipv6Address::parse("::ffff:1.2.3.4"));       // embedded v4
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:"));       // trailing colon
  EXPECT_FALSE(Ipv6Address::parse(":1:2:3:4:5:6:7"));       // leading colon
}

TEST(Ipv6Address, FormatCompressesLongestRun) {
  EXPECT_EQ(Ipv6Address(0x20010db800000000ULL, 1).to_string(), "2001:db8::1");
  EXPECT_EQ(Ipv6Address{}.to_string(), "::");
  EXPECT_EQ(Ipv6Address(0, 1).to_string(), "::1");
  EXPECT_EQ(Ipv6Address(0xfe80000000000000ULL, 0).to_string(), "fe80::");
}

TEST(Ipv6Address, FormatPrefersFirstOfEqualRuns) {
  // 2001:0:0:1:2:0:0:3 - two 2-group runs; RFC 5952 compresses the first.
  const Ipv6Address a{0x2001000000000001ULL, 0x0002000000000003ULL};
  EXPECT_EQ(a.to_string(), "2001::1:2:0:0:3");
}

TEST(Ipv6Address, FormatDoesNotCompressSingleZero) {
  const Ipv6Address a{0x2001000016b80001ULL, 0x0001000100010001ULL};
  EXPECT_EQ(a.to_string(), "2001:0:16b8:1:1:1:1:1");
}

TEST(Ipv6Address, RoundTripBytes) {
  const Ipv6Address a{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(Ipv6Address::from_bytes(a.to_bytes()), a);
  const auto bytes = a.to_bytes();
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[7], 0xef);
  EXPECT_EQ(bytes[8], 0xfe);
  EXPECT_EQ(bytes[15], 0x10);
}

TEST(Ipv6Address, ByteAccessor) {
  const Ipv6Address a{0x0011223344556677ULL, 0x8899aabbccddeeffULL};
  EXPECT_EQ(a.byte(0), 0x00);
  EXPECT_EQ(a.byte(6), 0x66);  // the paper's Figure 3 y-axis byte
  EXPECT_EQ(a.byte(7), 0x77);  // ... and x-axis byte
  EXPECT_EQ(a.byte(8), 0x88);
  EXPECT_EQ(a.byte(15), 0xff);
}

TEST(Ipv6Address, WithIidAndWithNetwork) {
  const Ipv6Address a{0x20010db8deadbeefULL, 0x1111111111111111ULL};
  EXPECT_EQ(a.with_iid(7).iid(), 7u);
  EXPECT_EQ(a.with_iid(7).network(), a.network());
  EXPECT_EQ(a.with_network(42).network(), 42u);
  EXPECT_EQ(a.with_network(42).iid(), a.iid());
}

TEST(Ipv6Address, OrderingFollowsNumericValue) {
  EXPECT_LT(*Ipv6Address::parse("2001:db8::1"), *Ipv6Address::parse("2001:db8::2"));
  EXPECT_LT(*Ipv6Address::parse("2001:db8::ffff"),
            *Ipv6Address::parse("2001:db9::"));
}

TEST(Ipv6Address, HashDistinguishesNetworkAndIid) {
  const Ipv6AddressHash h;
  EXPECT_NE(h(Ipv6Address(1, 2)), h(Ipv6Address(2, 1)));
}

/// Property: parse(to_string(a)) == a for a spread of addresses.
class Ipv6RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(Ipv6RoundTrip, ParseFormatsBackToCanonical) {
  const auto a = Ipv6Address::parse(GetParam());
  ASSERT_TRUE(a.has_value()) << GetParam();
  const std::string text = a->to_string();
  const auto b = Ipv6Address::parse(text);
  ASSERT_TRUE(b.has_value()) << text;
  EXPECT_EQ(*a, *b);
  // Canonical form is a fixed point of parse/format.
  EXPECT_EQ(b->to_string(), text);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, Ipv6RoundTrip,
    ::testing::Values("::", "::1", "1::", "2001:db8::1",
                      "2001:16b8:2:300:3a10:d5ff:feaa:bbcc",
                      "fe80::1ff:fe23:4567:890a", "2003:e2::42",
                      "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff",
                      "1:0:0:2:0:0:0:3", "a:b:c:d:e:f:1:2", "0:0:0:1::",
                      "::2:0:0:0", "2001:0:0:1::1"));

}  // namespace
}  // namespace scent::net
