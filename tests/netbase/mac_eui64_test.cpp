// Tests for MAC addresses, OUIs, and the EUI-64 codec — the reversible
// mapping at the heart of the tracking vulnerability.
#include <gtest/gtest.h>

#include "netbase/eui64.h"
#include "netbase/mac_address.h"

namespace scent::net {
namespace {

TEST(MacAddress, ParseColonSeparated) {
  const auto m = MacAddress::parse("38:10:d5:aa:bb:cc");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->bits(), 0x3810d5aabbccULL);
}

TEST(MacAddress, ParseDashSeparated) {
  const auto m = MacAddress::parse("38-10-D5-AA-BB-CC");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->bits(), 0x3810d5aabbccULL);
}

TEST(MacAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddress::parse(""));
  EXPECT_FALSE(MacAddress::parse("38:10:d5:aa:bb"));       // 5 groups
  EXPECT_FALSE(MacAddress::parse("38:10:d5:aa:bb:cc:dd")); // 7 groups
  EXPECT_FALSE(MacAddress::parse("3g:10:d5:aa:bb:cc"));    // bad hex
  EXPECT_FALSE(MacAddress::parse("38.10.d5.aa.bb.cc"));    // bad separator
  EXPECT_FALSE(MacAddress::parse("3810d5aabbcc"));         // no separators
}

TEST(MacAddress, ToStringLowercase) {
  EXPECT_EQ(MacAddress{0x3810D5AABBCCULL}.to_string(), "38:10:d5:aa:bb:cc");
  EXPECT_EQ(MacAddress{0}.to_string(), "00:00:00:00:00:00");
}

TEST(MacAddress, ByteAccessor) {
  const MacAddress m{0x0123456789abULL};
  EXPECT_EQ(m.byte(0), 0x01);
  EXPECT_EQ(m.byte(3), 0x67);
  EXPECT_EQ(m.byte(5), 0xab);
}

TEST(MacAddress, OuiIsTopThreeBytes) {
  const MacAddress m = *MacAddress::parse("38:10:d5:aa:bb:cc");
  EXPECT_EQ(m.oui().value(), 0x3810d5u);
  EXPECT_EQ(m.oui().to_string(), "38:10:d5");
}

TEST(MacAddress, FlagBits) {
  EXPECT_FALSE(MacAddress{0x3810d5000000ULL}.locally_administered());
  EXPECT_TRUE(MacAddress{0x0200d5000000ULL}.locally_administered());
  EXPECT_FALSE(MacAddress{0x3810d5000000ULL}.multicast());
  EXPECT_TRUE(MacAddress{0x0100d5000000ULL}.multicast());
}

TEST(MacAddress, ConstructFromSixBytes) {
  const MacAddress m{0x38, 0x10, 0xd5, 0xaa, 0xbb, 0xcc};
  EXPECT_EQ(m.bits(), 0x3810d5aabbccULL);
}

TEST(MacAddress, TopSixteenBitsMasked) {
  EXPECT_EQ(MacAddress{0xffff3810d5aabbccULL}.bits(), 0x3810d5aabbccULL);
}

// ---- EUI-64 codec -------------------------------------------------------

TEST(Eui64, EncodePaperFigure1Example) {
  // Figure 1: MAC 38:10:d5:aa:bb:cc -> IID 3a10:d5ff:feaa:bbcc
  // (U/L bit flipped: 0x38 -> 0x3a; ff:fe inserted mid-MAC).
  const MacAddress mac = *MacAddress::parse("38:10:d5:aa:bb:cc");
  EXPECT_EQ(mac_to_eui64(mac), 0x3a10d5fffeaabbccULL);
}

TEST(Eui64, DecodeRecoversOriginalMac) {
  const auto mac = eui64_to_mac(0x3a10d5fffeaabbccULL);
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "38:10:d5:aa:bb:cc");
}

TEST(Eui64, MarkerDetection) {
  EXPECT_TRUE(is_eui64_iid(0x3a10d5fffeaabbccULL));
  EXPECT_FALSE(is_eui64_iid(0x3a10d5fffaaabbccULL));  // fe -> fa
  EXPECT_FALSE(is_eui64_iid(0x3a10d5effeaabbccULL));  // ff -> ef
  EXPECT_FALSE(is_eui64_iid(0));
  EXPECT_FALSE(is_eui64_iid(1));
  // The marker alone suffices (false-positive rate 2^-16 accepted).
  EXPECT_TRUE(is_eui64_iid(0x000000fffe000000ULL));
}

TEST(Eui64, AddressLevelHelpers) {
  const Ipv6Address eui_addr{0x20010db800000000ULL, 0x3a10d5fffeaabbccULL};
  const Ipv6Address priv_addr{0x20010db800000000ULL, 0x8f3e2a91c4d57b06ULL};
  EXPECT_TRUE(is_eui64(eui_addr));
  EXPECT_FALSE(is_eui64(priv_addr));
  ASSERT_TRUE(embedded_mac(eui_addr).has_value());
  EXPECT_EQ(embedded_mac(eui_addr)->bits(), 0x3810d5aabbccULL);
  EXPECT_FALSE(embedded_mac(priv_addr).has_value());
}

TEST(Eui64, DecodeRejectsNonMarkerIid) {
  EXPECT_FALSE(eui64_to_mac(0xdeadbeefcafef00dULL).has_value());
}

TEST(Eui64, ZeroMacEncodesWithUniversalBit) {
  // The all-zero default MAC (a §5.5 pathology) still yields a valid,
  // detectable EUI-64 IID.
  const std::uint64_t iid = mac_to_eui64(MacAddress{0});
  EXPECT_TRUE(is_eui64_iid(iid));
  EXPECT_EQ(iid, 0x020000fffe000000ULL);
  EXPECT_EQ(eui64_to_mac(iid)->bits(), 0u);
}

/// Property: encode/decode round-trips for MACs across all OUI and NIC
/// byte patterns.
class Eui64RoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Eui64RoundTrip, MacSurvivesCodec) {
  const MacAddress mac{GetParam()};
  const std::uint64_t iid = mac_to_eui64(mac);
  EXPECT_TRUE(is_eui64_iid(iid));
  const auto decoded = eui64_to_mac(iid);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, mac);
}

INSTANTIATE_TEST_SUITE_P(
    MacCorpus, Eui64RoundTrip,
    ::testing::Values(0x000000000000ULL, 0xffffffffffffULL,
                      0x3810d5aabbccULL, 0x344b50123456ULL,
                      0x00e0fc000001ULL, 0x020000000001ULL,
                      0x800000000080ULL, 0x555555555555ULL,
                      0xaaaaaaaaaaaaULL, 0x123456789abcULL));

}  // namespace
}  // namespace scent::net
