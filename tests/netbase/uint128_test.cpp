// Tests for the portable 128-bit integer underlying all address arithmetic.
#include "netbase/uint128.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace scent::net {
namespace {

TEST(Uint128, DefaultIsZero) {
  constexpr Uint128 z;
  EXPECT_EQ(z.hi(), 0u);
  EXPECT_EQ(z.lo(), 0u);
  EXPECT_EQ(z, Uint128{0});
}

TEST(Uint128, ComparisonOrdersByHiThenLo) {
  EXPECT_LT(Uint128(0, 5), Uint128(1, 0));
  EXPECT_LT(Uint128(1, 0), Uint128(1, 1));
  EXPECT_GT(Uint128(2, 0), Uint128(1, 0xffffffffffffffffULL));
  EXPECT_EQ(Uint128(3, 4), Uint128(3, 4));
}

TEST(Uint128, AdditionCarriesAcrossLimb) {
  const Uint128 a{0, 0xffffffffffffffffULL};
  const Uint128 sum = a + Uint128{1};
  EXPECT_EQ(sum, Uint128(1, 0));
}

TEST(Uint128, SubtractionBorrowsAcrossLimb) {
  const Uint128 a{1, 0};
  EXPECT_EQ(a - Uint128{1}, Uint128(0, 0xffffffffffffffffULL));
}

TEST(Uint128, AdditionWrapsAtMax) {
  EXPECT_EQ(Uint128::max() + Uint128{1}, Uint128{});
}

TEST(Uint128, SubtractionWrapsBelowZero) {
  EXPECT_EQ(Uint128{} - Uint128{1}, Uint128::max());
}

TEST(Uint128, ShiftLeftWithinAndAcrossLimbs) {
  const Uint128 one{1};
  EXPECT_EQ(one << 0, one);
  EXPECT_EQ((one << 1).lo(), 2u);
  EXPECT_EQ((one << 64), Uint128(1, 0));
  EXPECT_EQ((one << 127), Uint128(0x8000000000000000ULL, 0));
  EXPECT_EQ((one << 128), Uint128{});
}

TEST(Uint128, ShiftRightWithinAndAcrossLimbs) {
  const Uint128 top{0x8000000000000000ULL, 0};
  EXPECT_EQ(top >> 0, top);
  EXPECT_EQ(top >> 63, Uint128(1, 0));
  EXPECT_EQ(top >> 64, Uint128(0, 0x8000000000000000ULL));
  EXPECT_EQ(top >> 127, Uint128{1});
  EXPECT_EQ(top >> 128, Uint128{});
}

TEST(Uint128, ShiftCrossLimbPreservesBits) {
  const Uint128 v{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(v << 8, Uint128(0x23456789abcdeffeULL, 0xdcba987654321000ULL));
  EXPECT_EQ(v >> 8, Uint128(0x000123456789abcdULL, 0xeffedcba98765432ULL));
}

TEST(Uint128, BitwiseOperators) {
  const Uint128 a{0xff00ff00ff00ff00ULL, 0x0f0f0f0f0f0f0f0fULL};
  const Uint128 b{0x0ff00ff00ff00ff0ULL, 0x00ff00ff00ff00ffULL};
  EXPECT_EQ((a & b).hi(), 0x0f000f000f000f00ULL);
  EXPECT_EQ((a | b).lo(), 0x0fff0fff0fff0fffULL);
  EXPECT_EQ((a ^ a), Uint128{});
  EXPECT_EQ(~Uint128{}, Uint128::max());
}

TEST(Uint128, MultiplySmallValues) {
  EXPECT_EQ(Uint128{7} * Uint128{6}, Uint128{42});
  EXPECT_EQ(Uint128{0} * Uint128::max(), Uint128{});
  EXPECT_EQ(Uint128{1} * Uint128::max(), Uint128::max());
}

TEST(Uint128, MultiplyCarriesIntoHighLimb) {
  // 2^32 * 2^32 = 2^64.
  const Uint128 two32{std::uint64_t{1} << 32};
  EXPECT_EQ(two32 * two32, Uint128(1, 0));
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1.
  const Uint128 m{0, ~0ULL};
  EXPECT_EQ(m * m, Uint128(0xfffffffffffffffeULL, 1));
}

TEST(Uint128, MultiplyWrapsModulo2To128) {
  EXPECT_EQ(Uint128::max() * Uint128{2},
            Uint128::max() - Uint128{1});
}

TEST(Uint128, DivisionAndModulo) {
  const Uint128 n{0x12345678ULL, 0x9abcdef012345678ULL};
  const Uint128 d{0x1000};
  const auto [q, r] = div_mod(n, d);
  EXPECT_EQ(q * d + r, n);
  EXPECT_LT(r, d);
  EXPECT_EQ(n / Uint128{1}, n);
  EXPECT_EQ(n % Uint128{1}, Uint128{});
}

TEST(Uint128, DivisionBy128BitDivisor) {
  const Uint128 n{5, 123};
  const Uint128 d{1, 0};  // 2^64
  EXPECT_EQ(n / d, Uint128{5});
  EXPECT_EQ(n % d, Uint128{123});
}

TEST(Uint128, DivisionByZeroYieldsZero) {
  EXPECT_EQ(Uint128{5} / Uint128{}, Uint128{});
  EXPECT_EQ(Uint128{5} % Uint128{}, Uint128{});
}

TEST(Uint128, BitAccess) {
  const Uint128 v = Uint128{1} << 100;
  EXPECT_TRUE(v.bit(100));
  EXPECT_FALSE(v.bit(99));
  EXPECT_FALSE(v.bit(101));
  EXPECT_FALSE(v.bit(200));
  EXPECT_TRUE(Uint128{1}.bit(0));
}

TEST(Uint128, CountlZero) {
  EXPECT_EQ(Uint128{}.countl_zero(), 128u);
  EXPECT_EQ(Uint128{1}.countl_zero(), 127u);
  EXPECT_EQ((Uint128{1} << 64).countl_zero(), 63u);
  EXPECT_EQ(Uint128::max().countl_zero(), 0u);
}

TEST(Uint128, FloorAndCeilLog2) {
  EXPECT_EQ(Uint128{1}.floor_log2(), 0u);
  EXPECT_EQ(Uint128{2}.floor_log2(), 1u);
  EXPECT_EQ(Uint128{3}.floor_log2(), 1u);
  EXPECT_EQ(Uint128{4}.floor_log2(), 2u);
  EXPECT_EQ((Uint128{1} << 100).floor_log2(), 100u);

  EXPECT_EQ(Uint128{1}.ceil_log2(), 0u);
  EXPECT_EQ(Uint128{2}.ceil_log2(), 1u);
  EXPECT_EQ(Uint128{3}.ceil_log2(), 2u);
  EXPECT_EQ(Uint128{4}.ceil_log2(), 2u);
  EXPECT_EQ(Uint128{5}.ceil_log2(), 3u);
}

TEST(Uint128, IncrementDecrement) {
  Uint128 v{0, ~0ULL};
  ++v;
  EXPECT_EQ(v, Uint128(1, 0));
  --v;
  EXPECT_EQ(v, Uint128(0, ~0ULL));
}

/// Property sweep: div_mod reconstruction identity over varied operands.
class Uint128DivisionProperty
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>> {
};

TEST_P(Uint128DivisionProperty, QuotientTimesDivisorPlusRemainderIsDividend) {
  const auto [a_seed, b_seed] = GetParam();
  // Derive structured 128-bit operands from the seeds.
  const Uint128 n{a_seed * 0x9e3779b97f4a7c15ULL, a_seed ^ 0x1234567890abcdefULL};
  const Uint128 d{b_seed >> 33, b_seed | 1};
  const auto [q, r] = div_mod(n, d);
  EXPECT_EQ(q * d + r, n);
  EXPECT_LT(r, d);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, Uint128DivisionProperty,
    ::testing::Values(std::pair{1ULL, 3ULL}, std::pair{17ULL, 257ULL},
                      std::pair{0xffffULL, 0xff00ff00ff00ULL},
                      std::pair{0xdeadbeefULL, 2ULL},
                      std::pair{0x8000000000000000ULL, 0x8000000000000001ULL},
                      std::pair{42ULL, 0xffffffffffffffffULL},
                      std::pair{0xabcdefULL, 0x1000000ULL}));

}  // namespace
}  // namespace scent::net
