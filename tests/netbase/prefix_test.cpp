// Tests for the Prefix value type: masking, containment, subnet math.
#include "netbase/prefix.h"

#include <gtest/gtest.h>

namespace scent::net {
namespace {

Ipv6Address addr(const char* text) { return *Ipv6Address::parse(text); }

TEST(Prefix, ConstructionMasksHostBits) {
  const Prefix p{addr("2001:db8::dead:beef"), 32};
  EXPECT_EQ(p.base(), addr("2001:db8::"));
  EXPECT_EQ(p.length(), 32u);
}

TEST(Prefix, EqualRegardlessOfConstructionAddress) {
  EXPECT_EQ((Prefix{addr("2001:db8::1"), 48}),
            (Prefix{addr("2001:db8::ffff"), 48}));
}

TEST(Prefix, ParseValid) {
  const auto p = Prefix::parse("2001:16b8::/32");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 32u);
  EXPECT_EQ(p->base(), addr("2001:16b8::"));
}

TEST(Prefix, ParseRejectsMalformed) {
  EXPECT_FALSE(Prefix::parse("2001:db8::"));       // no length
  EXPECT_FALSE(Prefix::parse("2001:db8::/"));      // empty length
  EXPECT_FALSE(Prefix::parse("2001:db8::/129"));   // too long
  EXPECT_FALSE(Prefix::parse("2001:db8::/1x"));    // trailing junk
  EXPECT_FALSE(Prefix::parse("notanaddr/32"));
  EXPECT_FALSE(Prefix::parse("/32"));
}

TEST(Prefix, ParseFullRangeLengths) {
  EXPECT_EQ(Prefix::parse("::/0")->length(), 0u);
  EXPECT_EQ(Prefix::parse("::1/128")->length(), 128u);
}

TEST(Prefix, MaskValues) {
  EXPECT_EQ(Prefix::mask(0), Uint128{});
  EXPECT_EQ(Prefix::mask(64), Uint128(~0ULL, 0));
  EXPECT_EQ(Prefix::mask(128), Uint128::max());
  EXPECT_EQ(Prefix::mask(1), Uint128(0x8000000000000000ULL, 0));
  EXPECT_EQ(Prefix::mask(48), Uint128(0xffffffffffff0000ULL, 0));
}

TEST(Prefix, ContainsAddress) {
  const Prefix p = *Prefix::parse("2001:16b8::/32");
  EXPECT_TRUE(p.contains(addr("2001:16b8::1")));
  EXPECT_TRUE(p.contains(addr("2001:16b8:ffff:ffff:ffff:ffff:ffff:ffff")));
  EXPECT_FALSE(p.contains(addr("2001:16b9::")));
  EXPECT_FALSE(p.contains(addr("2003:e2::1")));
}

TEST(Prefix, ContainsPrefix) {
  const Prefix p32 = *Prefix::parse("2001:16b8::/32");
  EXPECT_TRUE(p32.contains(*Prefix::parse("2001:16b8:100::/46")));
  EXPECT_TRUE(p32.contains(p32));
  EXPECT_FALSE(p32.contains(*Prefix::parse("2001::/16")));  // shorter
  EXPECT_FALSE(p32.contains(*Prefix::parse("2003:e2::/48")));
}

TEST(Prefix, ZeroLengthContainsEverything) {
  const Prefix all = *Prefix::parse("::/0");
  EXPECT_TRUE(all.contains(addr("ffff::1")));
  EXPECT_TRUE(all.contains(*Prefix::parse("2001:db8::/32")));
}

TEST(Prefix, CountSubnets) {
  const Prefix p48 = *Prefix::parse("2001:db8::/48");
  EXPECT_EQ(p48.count_subnets(64), Uint128{65536});
  EXPECT_EQ(p48.count_subnets(56), Uint128{256});
  EXPECT_EQ(p48.count_subnets(48), Uint128{1});
  EXPECT_EQ(p48.count_subnets(32), Uint128{1});  // not more specific
}

TEST(Prefix, SubnetEnumeration) {
  const Prefix p48 = *Prefix::parse("2001:db8::/48");
  EXPECT_EQ(p48.subnet(56, Uint128{0}), *Prefix::parse("2001:db8::/56"));
  EXPECT_EQ(p48.subnet(56, Uint128{1}), *Prefix::parse("2001:db8:0:100::/56"));
  EXPECT_EQ(p48.subnet(56, Uint128{255}),
            *Prefix::parse("2001:db8:0:ff00::/56"));
  EXPECT_EQ(p48.subnet(64, Uint128{65535}),
            *Prefix::parse("2001:db8:0:ffff::/64"));
}

TEST(Prefix, SubnetIndexInvertsSubnet) {
  const Prefix pool = *Prefix::parse("2001:16b8:100::/46");
  for (const std::uint64_t i : {0ULL, 1ULL, 255ULL, 1023ULL}) {
    const Prefix sub = pool.subnet(56, Uint128{i});
    EXPECT_EQ(pool.subnet_index(sub.base(), 56), Uint128{i});
    // Any address inside the subnet maps to the same index.
    EXPECT_EQ(pool.subnet_index(
                  Ipv6Address{sub.base().network() | 0xff, 0x1234}, 56),
              Uint128{i});
  }
}

TEST(Prefix, FirstAndLast) {
  const Prefix p = *Prefix::parse("2001:db8::/48");
  EXPECT_EQ(p.first(), addr("2001:db8::"));
  EXPECT_EQ(p.last(),
            addr("2001:db8:0:ffff:ffff:ffff:ffff:ffff"));
}

TEST(Prefix, Parent) {
  const Prefix p = *Prefix::parse("2001:db8:1234::/48");
  EXPECT_EQ(p.parent(32), *Prefix::parse("2001:db8::/32"));
  EXPECT_EQ(p.parent(60), p);  // cannot widen to longer length
}

TEST(Prefix, ToStringRoundTrip) {
  const Prefix p = *Prefix::parse("2001:16b8:100::/46");
  EXPECT_EQ(p.to_string(), "2001:16b8:100::/46");
  EXPECT_EQ(*Prefix::parse(p.to_string()), p);
}

TEST(Prefix, LengthClampedTo128) {
  const Prefix p{addr("::1"), 200};
  EXPECT_EQ(p.length(), 128u);
  EXPECT_TRUE(p.contains(addr("::1")));
  EXPECT_FALSE(p.contains(addr("::2")));
}

/// Property sweep over lengths: base is masked, last/first bracket all
/// contained addresses, count*size covers the range.
class PrefixLengthProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(PrefixLengthProperty, MaskAndBoundsAreConsistent) {
  const unsigned len = GetParam();
  const Prefix p{addr("2001:16b8:aaaa:bbbb:cccc:dddd:eeee:ffff"), len};
  EXPECT_EQ(p.base().bits() & ~Prefix::mask(len), Uint128{});
  EXPECT_TRUE(p.contains(p.first()));
  EXPECT_TRUE(p.contains(p.last()));
  if (len > 0) {
    // The address just past last() is outside (except for /0).
    EXPECT_FALSE(p.contains(Ipv6Address{p.last().bits() + Uint128{1}}));
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, PrefixLengthProperty,
                         ::testing::Values(0u, 1u, 16u, 32u, 46u, 48u, 56u,
                                           60u, 63u, 64u, 65u, 96u, 127u));

}  // namespace
}  // namespace scent::net
