// Tests for IID classification: EUI-64 vs low-byte vs embedded vs random.
#include "netbase/address_classifier.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace scent::net {
namespace {

TEST(Classifier, Eui64TakesPrecedence) {
  EXPECT_EQ(classify_iid(0x3a10d5fffeaabbccULL), IidClass::kEui64);
}

TEST(Classifier, LowByteAddresses) {
  EXPECT_EQ(classify_iid(0x1), IidClass::kLowByte);
  EXPECT_EQ(classify_iid(0x2), IidClass::kLowByte);
  EXPECT_EQ(classify_iid(0xffff), IidClass::kLowByte);
  // ::1:0:0:1-style is not low-byte.
  EXPECT_NE(classify_iid(0x0001000000000001ULL), IidClass::kLowByte);
}

TEST(Classifier, ZeroIsLowByte) {
  EXPECT_EQ(classify_iid(0), IidClass::kLowByte);
}

TEST(Classifier, EmbeddedWordPatterns) {
  EXPECT_EQ(classify_iid(0x00000000cafe0000ULL), IidClass::kEmbedded);
  EXPECT_EQ(classify_iid(0x0002000200020002ULL), IidClass::kEmbedded);
  EXPECT_EQ(classify_iid(0x1111111111111111ULL), IidClass::kEmbedded);
}

TEST(Classifier, HighEntropyIsRandom) {
  EXPECT_EQ(classify_iid(0x8f3e2a91c4d57b06ULL), IidClass::kRandom);
  EXPECT_EQ(classify_iid(0x9b27d4e5a1f08c63ULL), IidClass::kRandom);
}

TEST(Classifier, RandomIidsClassifyAsRandomAtScale) {
  // Statistical property: RFC 4941 privacy IIDs almost never look
  // low-byte or embedded. (EUI-64 false positives occur at ~2^-16.)
  sim::Rng rng{12345};
  int random_count = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    const auto c = classify_iid(rng.next());
    if (c == IidClass::kRandom) ++random_count;
    EXPECT_NE(c, IidClass::kLowByte);
  }
  EXPECT_GT(random_count, kTrials * 98 / 100);
}

TEST(Classifier, ToStringNames) {
  EXPECT_EQ(to_string(IidClass::kEui64), "eui64");
  EXPECT_EQ(to_string(IidClass::kLowByte), "low-byte");
  EXPECT_EQ(to_string(IidClass::kEmbedded), "embedded");
  EXPECT_EQ(to_string(IidClass::kRandom), "random");
}

TEST(Classifier, AddressOverloadUsesIid) {
  const Ipv6Address a{0x20010db8deadbeefULL, 0x1};
  EXPECT_EQ(classify(a), IidClass::kLowByte);
}

TEST(Classifier, Popcount64) {
  EXPECT_EQ(popcount64(0), 0u);
  EXPECT_EQ(popcount64(1), 1u);
  EXPECT_EQ(popcount64(0xffffffffffffffffULL), 64u);
  EXPECT_EQ(popcount64(0x8000000000000001ULL), 2u);
}

}  // namespace
}  // namespace scent::net
