// Tests for the campaign checkpoint manifest: round trips, atomic-save
// hygiene, and rejection of missing/truncated/mangled manifests.
#include "corpus/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace scent::corpus {
namespace {

struct TempDir {
  std::string path;
  explicit TempDir(const char* tag) {
    path = std::string{::testing::TempDir()} + "/scent_ckpt_" + tag + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

CampaignCheckpoint make_checkpoint() {
  CampaignCheckpoint c;
  c.seed = 0xC4A1DEADBEEFULL;
  c.first_day = 20645;
  c.scan_time_of_day = sim::hours(10);
  c.allocation_granularity_after_day0 = false;
  c.targets_digest = 0x0123456789abcdefULL;
  c.allocation_length_by_as[65001] = 56;
  c.allocation_length_by_as[65002] = 60;
  c.allocation_length_by_as[65101] = 64;
  for (int d = 0; d < 3; ++d) {
    CheckpointDay day;
    day.day = c.first_day + d;
    day.probes = 262144 + d;
    day.responses = 196608 + d;
    day.unique_eui64_iids = 48;
    day.rows = 196608 + d;
    day.clock_us = sim::days(d) + sim::hours(11);
    day.snapshot_file = snapshot_file_name(static_cast<std::size_t>(d));
    c.days.push_back(day);
  }
  return c;
}

std::string read_text(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out{path, std::ios::trunc};
  out << text;
}

TEST(Checkpoint, SnapshotFileNamesAreZeroPadded) {
  EXPECT_EQ(snapshot_file_name(0), "day_0000.snap");
  EXPECT_EQ(snapshot_file_name(7), "day_0007.snap");
  EXPECT_EQ(snapshot_file_name(1234), "day_1234.snap");
}

TEST(Checkpoint, RoundTripPreservesEveryField) {
  TempDir dir{"roundtrip"};
  const auto saved = make_checkpoint();
  ASSERT_TRUE(save_checkpoint(dir.path, saved));

  const auto loaded = load_checkpoint(dir.path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->version, kCheckpointFormatVersion);
  EXPECT_EQ(loaded->seed, saved.seed);
  EXPECT_EQ(loaded->first_day, saved.first_day);
  EXPECT_EQ(loaded->scan_time_of_day, saved.scan_time_of_day);
  EXPECT_EQ(loaded->allocation_granularity_after_day0,
            saved.allocation_granularity_after_day0);
  EXPECT_EQ(loaded->targets_digest, saved.targets_digest);
  EXPECT_EQ(loaded->allocation_length_by_as, saved.allocation_length_by_as);
  ASSERT_EQ(loaded->days.size(), saved.days.size());
  for (std::size_t i = 0; i < saved.days.size(); ++i) {
    EXPECT_EQ(loaded->days[i].day, saved.days[i].day);
    EXPECT_EQ(loaded->days[i].probes, saved.days[i].probes);
    EXPECT_EQ(loaded->days[i].responses, saved.days[i].responses);
    EXPECT_EQ(loaded->days[i].unique_eui64_iids,
              saved.days[i].unique_eui64_iids);
    EXPECT_EQ(loaded->days[i].rows, saved.days[i].rows);
    EXPECT_EQ(loaded->days[i].clock_us, saved.days[i].clock_us);
    EXPECT_EQ(loaded->days[i].snapshot_file, saved.days[i].snapshot_file);
  }
}

TEST(Checkpoint, SaveIsAtomicAndLeavesNoTempFile) {
  TempDir dir{"atomic"};
  ASSERT_TRUE(save_checkpoint(dir.path, make_checkpoint()));
  // Overwrite with a different checkpoint: the manifest is replaced whole.
  auto extended = make_checkpoint();
  extended.days.push_back(extended.days.back());
  extended.days.back().day += 1;
  ASSERT_TRUE(save_checkpoint(dir.path, extended));

  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    ++entries;
    EXPECT_EQ(entry.path().filename(), "manifest.txt");
  }
  EXPECT_EQ(entries, 1u);
  const auto loaded = load_checkpoint(dir.path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->days.size(), 4u);
}

TEST(Checkpoint, SaveToMissingDirectoryFails) {
  EXPECT_FALSE(save_checkpoint("/nonexistent/dir", make_checkpoint()));
}

TEST(Checkpoint, MissingManifestIsNullopt) {
  TempDir dir{"missing"};
  EXPECT_FALSE(load_checkpoint(dir.path).has_value());
}

TEST(Checkpoint, TruncatedManifestRejected) {
  TempDir dir{"trunc"};
  ASSERT_TRUE(save_checkpoint(dir.path, make_checkpoint()));
  const std::string text = read_text(manifest_path(dir.path));

  // Drop the trailing "end <count>" marker — a crash mid-write would look
  // like this if saves were not atomic.
  const auto end_pos = text.rfind("end ");
  ASSERT_NE(end_pos, std::string::npos);
  write_text(manifest_path(dir.path), text.substr(0, end_pos));
  EXPECT_FALSE(load_checkpoint(dir.path).has_value());

  // Cutting mid-line loses a day and makes the count mismatch.
  const auto day_pos = text.rfind("day ");
  ASSERT_NE(day_pos, std::string::npos);
  write_text(manifest_path(dir.path), text.substr(0, day_pos + 6));
  EXPECT_FALSE(load_checkpoint(dir.path).has_value());
}

TEST(Checkpoint, DayCountMismatchRejected) {
  TempDir dir{"count"};
  ASSERT_TRUE(save_checkpoint(dir.path, make_checkpoint()));
  std::string text = read_text(manifest_path(dir.path));
  const auto pos = text.rfind("end 3");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 5, "end 7");
  write_text(manifest_path(dir.path), text);
  EXPECT_FALSE(load_checkpoint(dir.path).has_value());
}

TEST(Checkpoint, MalformedValuesRejected) {
  TempDir dir{"mangled"};
  ASSERT_TRUE(save_checkpoint(dir.path, make_checkpoint()));
  const std::string text = read_text(manifest_path(dir.path));

  {
    std::string mangled = text;
    const auto pos = mangled.find("seed ");
    ASSERT_NE(pos, std::string::npos);
    mangled.replace(pos, 5, "seed x");
    write_text(manifest_path(dir.path), mangled);
    EXPECT_FALSE(load_checkpoint(dir.path).has_value());
  }
  {
    // A day line with too few fields is skipped as unknown arity, which
    // then trips the "end <count>" chain-length check.
    std::string mangled = text;
    const auto pos = mangled.find("\nday ") + 1;  // line start, not first_day
    ASSERT_NE(pos, std::string::npos + 1);
    const auto eol = mangled.find('\n', pos);
    mangled.replace(pos, eol - pos, "day 1 2 3");
    write_text(manifest_path(dir.path), mangled);
    EXPECT_FALSE(load_checkpoint(dir.path).has_value());
  }
  {
    std::string mangled = text;
    const auto pos = mangled.find("version ");
    ASSERT_NE(pos, std::string::npos);
    const auto eol = mangled.find('\n', pos);
    mangled.replace(pos, eol - pos, "version 99");
    write_text(manifest_path(dir.path), mangled);
    EXPECT_FALSE(load_checkpoint(dir.path).has_value());
  }
}

TEST(Checkpoint, UnknownKeysAndCommentsTolerated) {
  TempDir dir{"forward"};
  ASSERT_TRUE(save_checkpoint(dir.path, make_checkpoint()));
  std::string text = read_text(manifest_path(dir.path));
  text.insert(0, "# a comment line\nfuture_knob 42\n\n");
  write_text(manifest_path(dir.path), text);
  const auto loaded = load_checkpoint(dir.path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->days.size(), 3u);
  EXPECT_EQ(loaded->seed, 0xC4A1DEADBEEFULL);
}

TEST(Checkpoint, EmptyDayListRoundTrips) {
  TempDir dir{"nodays"};
  CampaignCheckpoint c;
  c.seed = 7;
  c.scan_time_of_day = sim::hours(9);
  ASSERT_TRUE(save_checkpoint(dir.path, c));
  const auto loaded = load_checkpoint(dir.path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->days.empty());
  EXPECT_TRUE(loaded->allocation_length_by_as.empty());
  EXPECT_EQ(loaded->seed, 7u);
}

}  // namespace
}  // namespace scent::corpus
