// Tests for the binary columnar snapshot format: round trips, byte
// stability, lazy column reads, the derived EUI-pair section, and — most
// importantly — corrupt-input handling: truncations, flipped bytes, wrong
// magic/version and disk-full writes must all be clean errors, never UB.
#include "corpus/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/rotation_detector.h"
#include "core/tracker.h"
#include "corpus/crc32c.h"
#include "netbase/eui64.h"

namespace scent::corpus {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const char* tag) {
    path = std::string{::testing::TempDir()} + "/scent_snap_" + tag + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".snap";
  }
  ~TempFile() { std::remove(path.c_str()); }
};

std::vector<unsigned char> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<unsigned char> bytes;
  unsigned char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

void dump(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// A store mixing EUI-64 and opaque responses, with repeats (so the
/// EUI-pair dedup and the classification memo both get exercised).
core::ObservationStore make_store(std::size_t rows) {
  core::ObservationStore store;
  for (std::size_t i = 0; i < rows; ++i) {
    core::Observation obs;
    obs.target = net::Ipv6Address{0x20010db800000000ULL | ((i % 64) << 16),
                                  0xbeef0000 + i};
    const std::uint64_t network = 0x2003e20000000000ULL | ((i % 16) << 8);
    if (i % 3 != 0) {
      const net::MacAddress mac{0x3a10d5000000ULL + (i % 24)};
      obs.response = net::Ipv6Address{network, net::mac_to_eui64(mac)};
    } else {
      obs.response = net::Ipv6Address{network, 0x0123456789abULL + i};
    }
    obs.type = i % 2 == 0 ? wire::Icmpv6Type::kDestinationUnreachable
                          : wire::Icmpv6Type::kEchoReply;
    obs.code = static_cast<std::uint8_t>(i % 4);
    obs.time = sim::days(static_cast<std::int64_t>(i % 5)) +
               static_cast<std::int64_t>(i);
    store.add(obs);
  }
  return store;
}

void expect_same_rows(const core::ObservationStore& a,
                      const core::ObservationStore& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.target(i), b.target(i)) << "row " << i;
    EXPECT_EQ(a.response(i), b.response(i)) << "row " << i;
    EXPECT_EQ(a.type_code(i), b.type_code(i)) << "row " << i;
    EXPECT_EQ(a.time(i), b.time(i)) << "row " << i;
  }
  // The loaded store's indexes are rebuilt by replay: same uniqueness
  // accounting, same per-MAC index sizes.
  EXPECT_EQ(a.unique_responses(), b.unique_responses());
  EXPECT_EQ(a.unique_eui64_responses(), b.unique_eui64_responses());
  EXPECT_EQ(a.unique_eui64_iids(), b.unique_eui64_iids());
}

TEST(Crc32c, MatchesKnownVectorAndChunksFreely) {
  // RFC 3720 test vector: crc32c("123456789") == 0xe3069283.
  const char digits[] = "123456789";
  EXPECT_EQ(crc32c(digits, 9), 0xe3069283u);

  Crc32c chunked;
  chunked.update(digits, 3);
  chunked.update(digits + 3, 1);
  chunked.update(digits + 4, 5);
  EXPECT_EQ(chunked.value(), 0xe3069283u);

  EXPECT_EQ(crc32c(digits, 0), 0u);
}

TEST(Snapshot, RoundTripPreservesRowsAndIndexes) {
  TempFile file{"roundtrip"};
  const auto store = make_store(500);
  SnapshotWriter writer;
  writer.append(store);
  EXPECT_EQ(writer.rows(), 500u);
  ASSERT_TRUE(writer.write(file.path));

  SnapshotReader reader;
  ASSERT_TRUE(reader.open(file.path)) << to_string(reader.error());
  EXPECT_EQ(reader.rows(), 500u);
  auto loaded = reader.read_store();
  ASSERT_TRUE(loaded.has_value()) << to_string(reader.error());
  expect_same_rows(store, *loaded);
}

TEST(Snapshot, EmptyStoreRoundTrips) {
  TempFile file{"empty"};
  SnapshotWriter writer;
  ASSERT_TRUE(writer.write(file.path));
  SnapshotReader reader;
  ASSERT_TRUE(reader.open(file.path));
  EXPECT_EQ(reader.rows(), 0u);
  EXPECT_EQ(reader.eui_pair_count(), 0u);
  const auto loaded = reader.read_store();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

TEST(Snapshot, WriteReadRewriteIsByteStable) {
  TempFile first{"stable_a"};
  TempFile second{"stable_b"};
  const auto store = make_store(300);
  SnapshotWriter writer;
  writer.append(store);
  ASSERT_TRUE(writer.write(first.path));

  SnapshotReader reader;
  ASSERT_TRUE(reader.open(first.path));
  const auto loaded = reader.read_store();
  ASSERT_TRUE(loaded.has_value());

  SnapshotWriter rewriter;
  rewriter.append(*loaded);
  ASSERT_TRUE(rewriter.write(second.path));
  EXPECT_EQ(slurp(first.path), slurp(second.path));
}

TEST(Snapshot, EncodedSizeMatchesFileAndLayout) {
  // Pinned to the frozen v1 layout: 42 B/row of columns + 32 B per
  // deduplicated EUI pair + the header, forever. (v2's encoded_size is
  // exercised in snapshot_v2_test.cpp — it has no closed form.)
  TempFile file{"size"};
  const auto store = make_store(100);
  SnapshotWriter writer;
  writer.set_format_version(kSnapshotFormatV1);
  writer.append(store);
  ASSERT_TRUE(writer.write(file.path));
  EXPECT_EQ(writer.encoded_size(), slurp(file.path).size());
  EXPECT_EQ(writer.encoded_size(),
            148u + 100u * 42u + writer.eui_pair_count() * 32u);
}

TEST(Snapshot, ViewAppendMatchesStoreAppend) {
  TempFile by_store{"via_store"};
  TempFile by_view{"via_view"};
  const auto store = make_store(200);

  SnapshotWriter store_writer;
  store_writer.append(store);
  ASSERT_TRUE(store_writer.write(by_store.path));

  // Two disjoint views covering the store — the engine's per-shard slices.
  SnapshotWriter view_writer;
  view_writer.append(store.view(0, 120));
  view_writer.append(store.view(120, 200));
  ASSERT_TRUE(view_writer.write(by_view.path));

  EXPECT_EQ(slurp(by_store.path), slurp(by_view.path));
}

TEST(Snapshot, LazyColumnReadsReturnExactColumns) {
  TempFile file{"lazy"};
  const auto store = make_store(250);
  SnapshotWriter writer;
  writer.append(store);
  ASSERT_TRUE(writer.write(file.path));

  SnapshotReader reader;
  ASSERT_TRUE(reader.open(file.path));
  std::vector<net::Ipv6Address> responses;
  std::vector<sim::TimePoint> times;
  ASSERT_TRUE(reader.read_responses(responses));
  ASSERT_TRUE(reader.read_times(times));
  ASSERT_EQ(responses.size(), 250u);
  ASSERT_EQ(times.size(), 250u);
  for (std::size_t i = 0; i < 250; ++i) {
    EXPECT_EQ(responses[i], store.response(i));
    EXPECT_EQ(times[i], store.time(i));
  }
}

TEST(Snapshot, EuiPairSectionHasSnapshotSemantics) {
  TempFile file{"pairs"};
  const auto store = make_store(400);
  SnapshotWriter writer;
  writer.append(store);
  ASSERT_TRUE(writer.write(file.path));

  // Reference: an in-memory rotation Snapshot recorded over the same rows
  // (dedup by target, last response wins, first-recording order).
  core::Snapshot reference;
  for (std::size_t i = 0; i < store.size(); ++i) {
    reference.record(store.target(i), store.response(i));
  }

  SnapshotReader reader;
  ASSERT_TRUE(reader.open(file.path));
  EXPECT_EQ(reader.eui_pair_count(), reference.map().size());
  std::vector<std::pair<net::Ipv6Address, net::Ipv6Address>> streamed;
  ASSERT_TRUE(reader.for_each_eui_pair(
      [&](net::Ipv6Address target, net::Ipv6Address response) {
        streamed.emplace_back(target, response);
      }));
  std::size_t i = 0;
  for (const auto& [target, response] : reference.map()) {
    ASSERT_LT(i, streamed.size());
    EXPECT_EQ(streamed[i].first, target);
    EXPECT_EQ(streamed[i].second, response);
    ++i;
  }
  EXPECT_EQ(i, streamed.size());
}

TEST(Snapshot, IncrementalRotationDiffMatchesFullDiff) {
  // Two "days": half the devices move networks, some disappear, some
  // appear. The incremental diff against the persisted day-1 snapshot
  // must produce exactly detect_rotation(day1, day2).
  core::ObservationStore day1;
  core::ObservationStore day2;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const net::Ipv6Address target{0x20010db800000000ULL | ((i % 32) << 16),
                                  i};
    const net::MacAddress mac{0x3a10d5000000ULL + i};
    core::Observation obs;
    obs.target = target;
    obs.time = 1;
    obs.response = net::Ipv6Address{0x2003e20000000000ULL + i * 256,
                                    net::mac_to_eui64(mac)};
    if (i % 5 != 4) day1.add(obs);  // i%5==4: appears only on day 2
    if (i % 3 == 0) {               // a third of the fleet rotates
      obs.response = net::Ipv6Address{0x2003e2000000ff00ULL + i * 256,
                                      net::mac_to_eui64(mac)};
    }
    if (i % 7 != 6) day2.add(obs);  // i%7==6: disappears on day 2
  }

  core::Snapshot snap1;
  core::Snapshot snap2;
  for (std::size_t i = 0; i < day1.size(); ++i) {
    snap1.record(day1.target(i), day1.response(i));
  }
  for (std::size_t i = 0; i < day2.size(); ++i) {
    snap2.record(day2.target(i), day2.response(i));
  }
  const auto full = core::detect_rotation(snap1, snap2);

  TempFile file{"incremental"};
  SnapshotWriter writer;
  writer.append(day1);
  ASSERT_TRUE(writer.write(file.path));
  SnapshotReader reader;
  ASSERT_TRUE(reader.open(file.path));
  const auto incremental = core::detect_rotation_incremental(reader, snap2);
  ASSERT_TRUE(incremental.has_value());

  ASSERT_EQ(incremental->size(), full.size());
  ASSERT_FALSE(full.empty());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ((*incremental)[i].prefix, full[i].prefix);
    EXPECT_EQ((*incremental)[i].eui_targets, full[i].eui_targets);
    EXPECT_EQ((*incremental)[i].changed, full[i].changed);
    EXPECT_EQ((*incremental)[i].rotating, full[i].rotating);
  }
}

TEST(Snapshot, TrackerFollowsMacAcrossDaySnapshots) {
  // The Tracker's lazy cross-day follow: scan a snapshot chain for one
  // MAC's sightings, reading only the response and time columns.
  const net::MacAddress victim{0x3a10d5aabbccULL};
  TempFile day0{"follow_d0"};
  TempFile day1{"follow_d1"};
  for (int day = 0; day < 2; ++day) {
    core::ObservationStore store;
    core::Observation obs;
    // The victim, seen twice in the same /64 (collapses to one sighting).
    obs.target = net::Ipv6Address{0x20010db800000000ULL, 1};
    obs.response = net::Ipv6Address{0x2003e20000001000ULL + day * 256,
                                    net::mac_to_eui64(victim)};
    obs.type = wire::Icmpv6Type::kEchoReply;
    obs.time = sim::days(day) + 100;
    store.add(obs);
    store.add(obs);
    // A different device the scan must ignore.
    obs.response = net::Ipv6Address{
        0x2003e20000009900ULL, net::mac_to_eui64(net::MacAddress{0x1ULL})};
    store.add(obs);
    SnapshotWriter writer;
    writer.append(store);
    ASSERT_TRUE(writer.write(day == 0 ? day0.path : day1.path));
  }

  std::size_t failed = 0;
  const auto sightings = core::sightings_from_snapshots(
      {day0.path, "/nonexistent/missing.snap", day1.path}, victim, &failed);
  EXPECT_EQ(failed, 1u);  // the missing file is skipped and counted
  ASSERT_EQ(sightings.size(), 2u);
  EXPECT_EQ(sightings[0].day, 0);
  EXPECT_EQ(sightings[0].network, 0x2003e20000001000ULL);
  EXPECT_EQ(sightings[1].day, 1);
  EXPECT_EQ(sightings[1].network, 0x2003e20000001100ULL);
}

TEST(SnapshotErrors, MissingFileIsOpenFailed) {
  SnapshotReader reader;
  EXPECT_FALSE(reader.open("/nonexistent/dir/nope.snap"));
  EXPECT_EQ(reader.error(), SnapshotError::kOpenFailed);
}

TEST(SnapshotErrors, TruncationsAtEveryLayerFailCleanly) {
  TempFile file{"trunc"};
  const auto store = make_store(64);
  SnapshotWriter writer;
  writer.append(store);
  ASSERT_TRUE(writer.write(file.path));
  const auto bytes = slurp(file.path);

  // Cut points: empty file, mid-magic, mid-fixed-header, mid-table,
  // header boundary minus one, mid-section, one byte short of complete.
  const std::size_t cuts[] = {0, 4, 20, 60, 147, 200, bytes.size() - 1};
  for (const std::size_t cut : cuts) {
    TempFile chopped{"trunc_cut"};
    dump(chopped.path,
         std::vector<unsigned char>(bytes.begin(), bytes.begin() + cut));
    SnapshotReader reader;
    EXPECT_FALSE(reader.open(chopped.path)) << "cut at " << cut;
    EXPECT_TRUE(reader.error() == SnapshotError::kTruncated ||
                reader.error() == SnapshotError::kCorruptSection)
        << "cut at " << cut << ": " << to_string(reader.error());
  }
}

TEST(SnapshotErrors, FlippedSectionByteFailsThatRead) {
  // Pinned to v1, where byte 160 is data inside the targets section (in a
  // v2 file that offset lands in the block directory, which open() itself
  // rejects — covered in snapshot_v2_test.cpp).
  TempFile file{"flip"};
  const auto store = make_store(64);
  SnapshotWriter writer;
  writer.set_format_version(kSnapshotFormatV1);
  writer.append(store);
  ASSERT_TRUE(writer.write(file.path));
  auto bytes = slurp(file.path);

  // Flip one byte inside the targets section (just past the header).
  bytes[160] ^= 0x40;
  dump(file.path, bytes);

  SnapshotReader reader;
  ASSERT_TRUE(reader.open(file.path));  // header is intact
  std::vector<net::Ipv6Address> targets;
  EXPECT_FALSE(reader.read_targets(targets));
  EXPECT_EQ(reader.error(), SnapshotError::kCorruptSection);
  EXPECT_TRUE(targets.empty());

  // The whole-store path reports the same failure.
  SnapshotReader again;
  ASSERT_TRUE(again.open(file.path));
  EXPECT_FALSE(again.read_store().has_value());
  EXPECT_EQ(again.error(), SnapshotError::kCorruptSection);
}

TEST(SnapshotErrors, FlippedEuiPairByteFailsIncrementalDiff) {
  TempFile file{"flip_pairs"};
  const auto store = make_store(64);
  SnapshotWriter writer;
  writer.append(store);
  ASSERT_TRUE(writer.write(file.path));
  auto bytes = slurp(file.path);
  bytes[bytes.size() - 5] ^= 0x01;  // inside the trailing eui_pairs section
  dump(file.path, bytes);

  SnapshotReader reader;
  ASSERT_TRUE(reader.open(file.path));
  const core::Snapshot empty_day;
  EXPECT_FALSE(
      core::detect_rotation_incremental(reader, empty_day).has_value());
  EXPECT_EQ(reader.error(), SnapshotError::kCorruptSection);
}

TEST(SnapshotErrors, FlippedHeaderByteFailsOpen) {
  TempFile file{"flip_header"};
  SnapshotWriter writer;
  writer.append(make_store(16));
  ASSERT_TRUE(writer.write(file.path));
  auto bytes = slurp(file.path);
  bytes[44] ^= 0x20;  // inside the section table
  dump(file.path, bytes);

  SnapshotReader reader;
  EXPECT_FALSE(reader.open(file.path));
  EXPECT_TRUE(reader.error() == SnapshotError::kCorruptSection ||
              reader.error() == SnapshotError::kTruncated)
      << to_string(reader.error());
}

TEST(SnapshotErrors, BadMagicRejected) {
  TempFile file{"magic"};
  SnapshotWriter writer;
  ASSERT_TRUE(writer.write(file.path));
  auto bytes = slurp(file.path);
  bytes[0] = 'X';
  dump(file.path, bytes);
  SnapshotReader reader;
  EXPECT_FALSE(reader.open(file.path));
  EXPECT_EQ(reader.error(), SnapshotError::kBadMagic);
}

TEST(SnapshotErrors, UnsupportedVersionRejected) {
  TempFile file{"version"};
  SnapshotWriter writer;
  ASSERT_TRUE(writer.write(file.path));
  auto bytes = slurp(file.path);
  bytes[8] = 99;  // version checked before the header CRC, so no re-CRC
  dump(file.path, bytes);
  SnapshotReader reader;
  EXPECT_FALSE(reader.open(file.path));
  EXPECT_EQ(reader.error(), SnapshotError::kBadVersion);
}

TEST(SnapshotErrors, ReadsAfterFailedOpenStayFailed) {
  SnapshotReader reader;
  EXPECT_FALSE(reader.open("/nonexistent/dir/nope.snap"));
  std::vector<net::Ipv6Address> out;
  EXPECT_FALSE(reader.read_targets(out));
  EXPECT_FALSE(reader.read_store().has_value());
  EXPECT_EQ(reader.error(), SnapshotError::kOpenFailed);
}

#ifdef __linux__
TEST(SnapshotErrors, DiskFullIsReportedNotSwallowed) {
  std::FILE* probe = std::fopen("/dev/full", "w");
  if (probe == nullptr) GTEST_SKIP() << "/dev/full not available";
  std::fclose(probe);

  SnapshotWriter writer;
  writer.append(make_store(4096));
  EXPECT_FALSE(writer.write("/dev/full"));
}
#endif

}  // namespace
}  // namespace scent::corpus
