// Tests for snapshot format v2: multi-block round trips, byte stability at
// any thread count, block-skipping row-window reads, block min/max stats,
// the committed frozen-v1 fixture, mixed-version chains — and the corrupt-
// input matrix (truncation mid-block, flipped compressed bytes, forged
// block indexes, disk-full writes), which must all be typed SnapshotErrors,
// never UB.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "analysis/input.h"
#include "core/rotation_detector.h"
#include "corpus/crc32c.h"
#include "corpus/snapshot.h"
#include "netbase/eui64.h"

namespace scent::corpus {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const char* tag) {
    path = std::string{::testing::TempDir()} + "/scent_snapv2_" + tag + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".snap";
  }
  ~TempFile() { std::remove(path.c_str()); }
};

std::vector<unsigned char> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<unsigned char> bytes;
  unsigned char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

void dump(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

std::uint32_t load_u32(const std::vector<unsigned char>& b, std::size_t at) {
  return static_cast<std::uint32_t>(b[at]) |
         static_cast<std::uint32_t>(b[at + 1]) << 8 |
         static_cast<std::uint32_t>(b[at + 2]) << 16 |
         static_cast<std::uint32_t>(b[at + 3]) << 24;
}

std::uint64_t load_u64(const std::vector<unsigned char>& b, std::size_t at) {
  return static_cast<std::uint64_t>(load_u32(b, at)) |
         static_cast<std::uint64_t>(load_u32(b, at + 4)) << 32;
}

void store_u32(std::vector<unsigned char>& b, std::size_t at,
               std::uint32_t v) {
  b[at] = static_cast<unsigned char>(v);
  b[at + 1] = static_cast<unsigned char>(v >> 8);
  b[at + 2] = static_cast<unsigned char>(v >> 16);
  b[at + 3] = static_cast<unsigned char>(v >> 24);
}

/// Locates section `id` in a snapshot's raw bytes via the header table.
/// Returns {table entry offset, section offset, section size}.
struct SectionLoc {
  std::size_t entry = 0;
  std::size_t offset = 0;
  std::size_t size = 0;
};
SectionLoc locate_section(const std::vector<unsigned char>& bytes,
                          std::uint32_t id) {
  const std::uint32_t count = load_u32(bytes, 20);
  for (std::uint32_t k = 0; k < count; ++k) {
    const std::size_t entry = 24 + std::size_t{24} * k;
    if (load_u32(bytes, entry) == id) {
      return SectionLoc{entry, static_cast<std::size_t>(load_u64(bytes, entry + 4)),
                        static_cast<std::size_t>(load_u64(bytes, entry + 12))};
    }
  }
  ADD_FAILURE() << "section " << id << " not found";
  return {};
}

/// Same recipe as snapshot_test.cpp (and the committed v1 fixture, which
/// was generated from exactly this function at rows=1000 — keep them in
/// sync or the fixture test below will tell you).
core::ObservationStore make_store(std::size_t rows) {
  core::ObservationStore store;
  for (std::size_t i = 0; i < rows; ++i) {
    core::Observation obs;
    obs.target = net::Ipv6Address{0x20010db800000000ULL | ((i % 64) << 16),
                                  0xbeef0000 + i};
    const std::uint64_t network = 0x2003e20000000000ULL | ((i % 16) << 8);
    if (i % 3 != 0) {
      const net::MacAddress mac{0x3a10d5000000ULL + (i % 24)};
      obs.response = net::Ipv6Address{network, net::mac_to_eui64(mac)};
    } else {
      obs.response = net::Ipv6Address{network, 0x0123456789abULL + i};
    }
    obs.type = i % 2 == 0 ? wire::Icmpv6Type::kDestinationUnreachable
                          : wire::Icmpv6Type::kEchoReply;
    obs.code = static_cast<std::uint8_t>(i % 4);
    obs.time = sim::days(static_cast<std::int64_t>(i % 5)) +
               static_cast<std::int64_t>(i);
    store.add(obs);
  }
  return store;
}

/// Shared multi-block corpus: 150k rows = 3 blocks per column section
/// (and, since every target is distinct, 3 blocks of EUI pairs too).
constexpr std::size_t kBigRows = 150000;
const core::ObservationStore& big_store() {
  static const core::ObservationStore store = make_store(kBigRows);
  return store;
}

void expect_same_rows(const core::ObservationStore& a,
                      const core::ObservationStore& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.target(i), b.target(i)) << "row " << i;
    ASSERT_EQ(a.response(i), b.response(i)) << "row " << i;
    ASSERT_EQ(a.type_code(i), b.type_code(i)) << "row " << i;
    ASSERT_EQ(a.time(i), b.time(i)) << "row " << i;
  }
  EXPECT_EQ(a.unique_responses(), b.unique_responses());
  EXPECT_EQ(a.unique_eui64_responses(), b.unique_eui64_responses());
  EXPECT_EQ(a.unique_eui64_iids(), b.unique_eui64_iids());
}

TEST(SnapshotV2, MultiBlockRoundTripPreservesRows) {
  TempFile file{"roundtrip"};
  const auto& store = big_store();
  SnapshotWriter writer;
  writer.append(store);
  EXPECT_EQ(writer.format_version(), kSnapshotFormatV2);
  ASSERT_TRUE(writer.write(file.path));

  SnapshotReader reader;
  ASSERT_TRUE(reader.open(file.path)) << to_string(reader.error());
  EXPECT_EQ(reader.version(), kSnapshotFormatV2);
  EXPECT_EQ(reader.rows(), kBigRows);
  auto loaded = reader.read_store();
  ASSERT_TRUE(loaded.has_value()) << to_string(reader.error());
  expect_same_rows(store, *loaded);
}

TEST(SnapshotV2, BytesIdenticalAtAnyThreadCountBothDirections) {
  TempFile serial{"stable_t1"};
  TempFile parallel{"stable_t8"};
  SnapshotWriter one;
  one.set_threads(1);
  one.append(big_store());
  ASSERT_TRUE(one.write(serial.path));

  SnapshotWriter eight;
  eight.set_threads(8);
  eight.append(big_store());
  ASSERT_TRUE(eight.write(parallel.path));
  EXPECT_EQ(slurp(serial.path), slurp(parallel.path));

  // And the reader decodes the same rows at any thread count.
  SnapshotReader serial_reader;
  serial_reader.set_threads(1);
  ASSERT_TRUE(serial_reader.open(serial.path));
  const auto from_one = serial_reader.read_store();
  ASSERT_TRUE(from_one.has_value());

  SnapshotReader parallel_reader;
  parallel_reader.set_threads(8);
  ASSERT_TRUE(parallel_reader.open(parallel.path));
  const auto from_eight = parallel_reader.read_store();
  ASSERT_TRUE(from_eight.has_value());
  expect_same_rows(*from_one, *from_eight);
}

TEST(SnapshotV2, CompressesWellBelowV1) {
  TempFile v1{"cmp_v1"};
  TempFile v2{"cmp_v2"};
  SnapshotWriter w1;
  w1.set_format_version(kSnapshotFormatV1);
  w1.append(big_store());
  ASSERT_TRUE(w1.write(v1.path));
  SnapshotWriter w2;
  w2.append(big_store());
  ASSERT_TRUE(w2.write(v2.path));

  const std::uint64_t v1_bytes = w1.encoded_size();
  const std::uint64_t v2_bytes = w2.encoded_size();
  EXPECT_EQ(v1_bytes, slurp(v1.path).size());
  EXPECT_EQ(v2_bytes, slurp(v2.path).size());
  // The hard >= 3x floor lives in bench_micro on the campaign-shaped bench
  // corpus; this synthetic store still must compress at least 2x.
  EXPECT_LT(v2_bytes * 2, v1_bytes)
      << "v2 " << v2_bytes << " vs v1 " << v1_bytes;
}

TEST(SnapshotV2, EncodedSizeMatchesFileAndInvalidatesOnAppend) {
  TempFile first{"size_a"};
  TempFile second{"size_b"};
  SnapshotWriter writer;
  writer.append(big_store());
  // Dry-run encode before any write...
  const std::uint64_t before = writer.encoded_size();
  ASSERT_TRUE(writer.write(first.path));
  EXPECT_EQ(before, slurp(first.path).size());
  // ...the post-write cached answer...
  EXPECT_EQ(writer.encoded_size(), before);

  // ...and the cache is invalidated by append: the new size matches the
  // new file, not the stale one.
  core::Observation extra;
  extra.target = net::Ipv6Address{0x20010db800000000ULL, 0x1};
  extra.response = net::Ipv6Address{0x2003e20000000000ULL, 0x2};
  extra.time = 7;
  writer.append(extra);
  const std::uint64_t after = writer.encoded_size();
  ASSERT_TRUE(writer.write(second.path));
  EXPECT_EQ(after, slurp(second.path).size());
}

TEST(SnapshotV2, RangeReadsMatchFullReadSlices) {
  TempFile file{"ranges"};
  SnapshotWriter writer;
  writer.append(big_store());
  ASSERT_TRUE(writer.write(file.path));

  SnapshotReader full;
  ASSERT_TRUE(full.open(file.path));
  std::vector<net::Ipv6Address> targets, responses;
  std::vector<std::uint16_t> type_codes;
  std::vector<sim::TimePoint> times;
  ASSERT_TRUE(full.read_targets(targets));
  ASSERT_TRUE(full.read_responses(responses));
  ASSERT_TRUE(full.read_type_codes(type_codes));
  ASSERT_TRUE(full.read_times(times));

  // Windows: everything, a block-boundary straddle, strictly inside one
  // block, a clamped tail overhang, and an empty window.
  const std::pair<std::uint64_t, std::uint64_t> windows[] = {
      {0, kBigRows},
      {kSnapshotBlockElements - 10, 20},
      {70000, 1000},
      {kBigRows - 5, 100},
      {40, 0},
  };
  for (const auto& [first, count] : windows) {
    SCOPED_TRACE(testing::Message() << "window [" << first << ", +" << count
                                    << ")");
    const std::uint64_t clamped =
        std::min<std::uint64_t>(count, kBigRows - first);
    SnapshotReader reader;
    ASSERT_TRUE(reader.open(file.path));
    std::vector<net::Ipv6Address> wt, wr;
    std::vector<std::uint16_t> wtc;
    std::vector<sim::TimePoint> wtm;
    ASSERT_TRUE(reader.read_targets(wt, first, count));
    ASSERT_TRUE(reader.read_responses(wr, first, count));
    ASSERT_TRUE(reader.read_type_codes(wtc, first, count));
    ASSERT_TRUE(reader.read_times(wtm, first, count));
    ASSERT_EQ(wt.size(), clamped);
    const auto b = static_cast<std::ptrdiff_t>(first);
    const auto e = b + static_cast<std::ptrdiff_t>(clamped);
    EXPECT_TRUE(std::equal(wt.begin(), wt.end(), targets.begin() + b,
                           targets.begin() + e));
    EXPECT_TRUE(std::equal(wr.begin(), wr.end(), responses.begin() + b,
                           responses.begin() + e));
    EXPECT_TRUE(std::equal(wtc.begin(), wtc.end(), type_codes.begin() + b,
                           type_codes.begin() + e));
    EXPECT_TRUE(std::equal(wtm.begin(), wtm.end(), times.begin() + b,
                           times.begin() + e));
    if (clamped > 0 && clamped < kBigRows) {
      // A proper sub-window must have skipped the non-overlapping blocks.
      EXPECT_GT(reader.blocks_skipped(), 0u);
    }
  }
}

TEST(SnapshotV2, TimeRangeComesFromBlockStats) {
  TempFile file{"times"};
  const auto& store = big_store();
  SnapshotWriter writer;
  writer.append(store);
  ASSERT_TRUE(writer.write(file.path));

  sim::TimePoint lo = store.time(0);
  sim::TimePoint hi = store.time(0);
  for (std::size_t i = 1; i < store.size(); ++i) {
    lo = std::min(lo, store.time(i));
    hi = std::max(hi, store.time(i));
  }
  SnapshotReader reader;
  ASSERT_TRUE(reader.open(file.path));
  const auto range = reader.time_range();
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->first, lo);
  EXPECT_EQ(range->second, hi);
  // The day predicate costs no payload decode: nothing read, nothing
  // counted as skipped either (no window predicate ran).
  EXPECT_EQ(reader.blocks_read(), 0u);
}

TEST(SnapshotV2, EmptySnapshotRoundTrips) {
  TempFile file{"empty"};
  SnapshotWriter writer;
  ASSERT_TRUE(writer.write(file.path));
  SnapshotReader reader;
  ASSERT_TRUE(reader.open(file.path)) << to_string(reader.error());
  EXPECT_EQ(reader.version(), kSnapshotFormatV2);
  EXPECT_EQ(reader.rows(), 0u);
  EXPECT_EQ(reader.eui_pair_count(), 0u);
  EXPECT_FALSE(reader.time_range().has_value());
  std::vector<net::Ipv6Address> out;
  EXPECT_TRUE(reader.read_targets(out));
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(reader.read_targets(out, 0, 10));  // clamps to nothing
  EXPECT_TRUE(out.empty());
  const auto loaded = reader.read_store();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

TEST(SnapshotV2, MultiBlockEuiPairStreamKeepsSnapshotSemantics) {
  TempFile file{"pairs"};
  const auto& store = big_store();
  SnapshotWriter writer;
  writer.append(store);
  ASSERT_TRUE(writer.write(file.path));

  core::Snapshot reference;
  for (std::size_t i = 0; i < store.size(); ++i) {
    reference.record(store.target(i), store.response(i));
  }
  std::vector<std::pair<net::Ipv6Address, net::Ipv6Address>> want;
  for (const auto& [target, response] : reference.map()) {
    want.emplace_back(target, response);
  }

  SnapshotReader reader;
  ASSERT_TRUE(reader.open(file.path));
  ASSERT_EQ(reader.eui_pair_count(), want.size());
  std::size_t i = 0;
  bool mismatch = false;
  ASSERT_TRUE(reader.for_each_eui_pair(
      [&](net::Ipv6Address target, net::Ipv6Address response) {
        if (i >= want.size() || target != want[i].first ||
            response != want[i].second) {
          mismatch = true;
        }
        ++i;
      }));
  EXPECT_EQ(i, want.size());
  EXPECT_FALSE(mismatch);
}

TEST(SnapshotV2, CommittedV1FixtureLoadsForever) {
  // The frozen-v1 compatibility fixture: generated once (from this exact
  // make_store recipe at 1000 rows), committed, and never regenerated. If
  // this test fails, the v1 read path broke — fix the reader, not the
  // fixture.
  const std::string path =
      std::string{SCENT_TEST_DATA_DIR} + "/v1_fixture.snap";
  SnapshotReader reader;
  ASSERT_TRUE(reader.open(path)) << to_string(reader.error());
  EXPECT_EQ(reader.version(), kSnapshotFormatV1);
  EXPECT_EQ(reader.rows(), 1000u);
  EXPECT_FALSE(reader.time_range().has_value());  // v1 has no block stats

  const auto expected = make_store(1000);
  auto loaded = reader.read_store();
  ASSERT_TRUE(loaded.has_value()) << to_string(reader.error());
  expect_same_rows(expected, *loaded);

  // The frozen layout is a closed-form size: header + 42 B/row + 32 B/pair.
  EXPECT_EQ(slurp(path).size(),
            148u + 1000u * 42u + reader.eui_pair_count() * 32u);

  // v1 row-window reads slice the full section — correct, no block math.
  SnapshotReader window_reader;
  ASSERT_TRUE(window_reader.open(path));
  std::vector<net::Ipv6Address> window;
  ASSERT_TRUE(window_reader.read_responses(window, 100, 50));
  ASSERT_EQ(window.size(), 50u);
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window[i], expected.response(100 + i));
  }
  EXPECT_EQ(window_reader.blocks_read(), 0u);
  EXPECT_EQ(window_reader.blocks_skipped(), 0u);
}

TEST(SnapshotV2, MixedVersionChainScansLikeTheStore) {
  // A checkpoint chain interrupted mid-campaign and resumed with a newer
  // build: v1, then v2 (multi-block), then v1 again. ChainInput must not
  // care.
  const auto& store = big_store();
  TempFile f0{"chain0"};
  TempFile f1{"chain1"};
  TempFile f2{"chain2"};
  const std::size_t cuts[4] = {0, 60000, 130000, kBigRows};
  const std::uint32_t versions[3] = {kSnapshotFormatV1, kSnapshotFormatV2,
                                     kSnapshotFormatV1};
  const std::string paths[3] = {f0.path, f1.path, f2.path};
  for (std::size_t f = 0; f < 3; ++f) {
    SnapshotWriter writer;
    writer.set_format_version(versions[f]);
    writer.append(store.view(cuts[f], cuts[f + 1]));
    ASSERT_TRUE(writer.write(paths[f]));
  }

  analysis::ChainInput chain{{paths[0], paths[1], paths[2]}};
  ASSERT_EQ(chain.rows(), kBigRows);
  EXPECT_EQ(chain.failed_files(), 0u);

  // Full scan: every row, in order, identical to the in-memory columns.
  std::vector<net::Ipv6Address> targets, responses;
  std::vector<sim::TimePoint> times;
  chain.scan(0, kBigRows, true,
             [&](std::size_t first_row,
                 std::span<const net::Ipv6Address> t,
                 std::span<const net::Ipv6Address> r,
                 std::span<const sim::TimePoint> tm) {
               ASSERT_EQ(first_row, targets.size());
               targets.insert(targets.end(), t.begin(), t.end());
               responses.insert(responses.end(), r.begin(), r.end());
               times.insert(times.end(), tm.begin(), tm.end());
             });
  ASSERT_EQ(targets.size(), kBigRows);
  bool rows_match = true;
  for (std::size_t i = 0; i < kBigRows; ++i) {
    if (targets[i] != store.target(i) || responses[i] != store.response(i) ||
        times[i] != store.time(i)) {
      rows_match = false;
      break;
    }
  }
  EXPECT_TRUE(rows_match);

  // A window inside the v2 file's first block: rows 65000..66000 are file
  // rows 5000..6000 of the 70000-row middle file, so its second block is
  // skipped for every column the scan materializes.
  analysis::ChainInput windowed{{paths[0], paths[1], paths[2]}};
  std::vector<net::Ipv6Address> wr;
  windowed.scan(65000, 66000, false,
                [&](std::size_t, std::span<const net::Ipv6Address>,
                    std::span<const net::Ipv6Address> r,
                    std::span<const sim::TimePoint>) {
                  wr.insert(wr.end(), r.begin(), r.end());
                });
  ASSERT_EQ(wr.size(), 1000u);
  for (std::size_t i = 0; i < wr.size(); ++i) {
    ASSERT_EQ(wr[i], store.response(65000 + i)) << "row " << i;
  }
  EXPECT_GT(windowed.blocks_read(), 0u);
  EXPECT_GT(windowed.blocks_skipped(), 0u);
}

// ---- Corrupt-input matrix --------------------------------------------

TEST(SnapshotV2Errors, TruncationMidBlockFailsCleanly) {
  TempFile file{"trunc"};
  SnapshotWriter writer;
  writer.append(big_store());
  ASSERT_TRUE(writer.write(file.path));
  const auto bytes = slurp(file.path);

  // Cuts land mid-directory, mid-block-payload, and one byte short; every
  // section size is in the (CRC-protected) header, so all are caught at
  // open before any payload is trusted.
  const std::size_t cuts[] = {150, 200, bytes.size() / 2, bytes.size() - 1};
  for (const std::size_t cut : cuts) {
    TempFile chopped{"trunc_cut"};
    dump(chopped.path,
         std::vector<unsigned char>(bytes.begin(), bytes.begin() + cut));
    SnapshotReader reader;
    EXPECT_FALSE(reader.open(chopped.path)) << "cut at " << cut;
    EXPECT_TRUE(reader.error() == SnapshotError::kTruncated ||
                reader.error() == SnapshotError::kCorruptSection)
        << "cut at " << cut << ": " << to_string(reader.error());
  }
}

TEST(SnapshotV2Errors, FlippedBlockByteFailsOnlyOverlappingReads) {
  TempFile file{"flip_block"};
  SnapshotWriter writer;
  writer.append(big_store());
  ASSERT_TRUE(writer.write(file.path));
  auto bytes = slurp(file.path);

  // Flip one bit inside block 0 of the targets section (just past its
  // block directory).
  const SectionLoc sec = locate_section(bytes, 1);
  const std::size_t dir_bytes = 4 + std::size_t{36} * load_u32(bytes, sec.offset);
  bytes[sec.offset + dir_bytes + 10] ^= 0x04;
  dump(file.path, bytes);

  // The directory is intact, so open succeeds; a full targets read must
  // CRC-fail...
  SnapshotReader full;
  ASSERT_TRUE(full.open(file.path)) << to_string(full.error());
  std::vector<net::Ipv6Address> targets;
  EXPECT_FALSE(full.read_targets(targets));
  EXPECT_EQ(full.error(), SnapshotError::kCorruptSection);
  EXPECT_TRUE(targets.empty());

  // ...other columns are untouched...
  SnapshotReader other;
  ASSERT_TRUE(other.open(file.path));
  std::vector<net::Ipv6Address> responses;
  EXPECT_TRUE(other.read_responses(responses));
  EXPECT_EQ(responses.size(), kBigRows);

  // ...and a window that never touches the damaged block reads fine:
  // per-block CRC means damage is only seen by reads that overlap it.
  SnapshotReader window;
  ASSERT_TRUE(window.open(file.path));
  std::vector<net::Ipv6Address> tail;
  ASSERT_TRUE(window.read_targets(tail, 70000, 1000));
  ASSERT_EQ(tail.size(), 1000u);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    ASSERT_EQ(tail[i], big_store().target(70000 + i));
  }

  // But any window overlapping block 0 fails with the same typed error.
  SnapshotReader overlap;
  ASSERT_TRUE(overlap.open(file.path));
  std::vector<net::Ipv6Address> head;
  EXPECT_FALSE(overlap.read_targets(head, 0, 10));
  EXPECT_EQ(overlap.error(), SnapshotError::kCorruptSection);
}

TEST(SnapshotV2Errors, DamagedBlockDirectoryFailsOpen) {
  TempFile file{"flip_dir"};
  SnapshotWriter writer;
  writer.append(big_store());
  ASSERT_TRUE(writer.write(file.path));
  auto bytes = slurp(file.path);

  // A flipped byte inside the block directory of section 1: the section-
  // table CRC covers the directory, so the forged index never survives
  // open — no payload is ever sized or read from it.
  const SectionLoc sec = locate_section(bytes, 1);
  bytes[sec.offset + 9] ^= 0x10;  // inside block 0's directory entry
  dump(file.path, bytes);
  SnapshotReader reader;
  EXPECT_FALSE(reader.open(file.path));
  EXPECT_EQ(reader.error(), SnapshotError::kCorruptSection);
}

TEST(SnapshotV2Errors, ForgedButCrcValidBlockIndexIsBadLayout) {
  TempFile file{"forged_dir"};
  SnapshotWriter writer;
  writer.append(big_store());
  ASSERT_TRUE(writer.write(file.path));
  auto bytes = slurp(file.path);

  // An adversarial (or bit-rotted-then-rehashed) directory whose CRCs all
  // check out but whose element counts no longer sum to the row count:
  // bump block 0's element count, then recompute the directory CRC in the
  // section table and the header CRC over it. The structural validator
  // must still reject it — as kBadLayout, not a crash or overread.
  const SectionLoc sec = locate_section(bytes, 1);
  const std::uint32_t block_count = load_u32(bytes, sec.offset);
  ASSERT_GE(block_count, 2u);
  const std::size_t dir_bytes = 4 + std::size_t{36} * block_count;
  const std::size_t elements_at = sec.offset + 4 + 8;
  store_u32(bytes, elements_at, load_u32(bytes, elements_at) + 1);
  store_u32(bytes, sec.entry + 20,
            crc32c(bytes.data() + sec.offset, dir_bytes));
  store_u32(bytes, 144, crc32c(bytes.data(), 144));
  dump(file.path, bytes);

  SnapshotReader reader;
  EXPECT_FALSE(reader.open(file.path));
  EXPECT_EQ(reader.error(), SnapshotError::kBadLayout);
}

#ifdef __linux__
TEST(SnapshotV2Errors, DiskFullDuringCompressedWriteIsReported) {
  std::FILE* probe = std::fopen("/dev/full", "w");
  if (probe == nullptr) GTEST_SKIP() << "/dev/full not available";
  std::fclose(probe);

  SnapshotWriter writer;
  writer.append(make_store(4096));
  ASSERT_EQ(writer.format_version(), kSnapshotFormatV2);
  EXPECT_FALSE(writer.write("/dev/full"));
}
#endif

}  // namespace
}  // namespace scent::corpus
