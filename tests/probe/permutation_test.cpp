// Tests for the zmap-style cyclic-group permutation and its number theory.
#include "probe/permutation.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace scent::probe {
namespace {

TEST(NumberTheory, MulModMatchesSmallCases) {
  EXPECT_EQ(mul_mod_u64(7, 8, 5), 1u);
  EXPECT_EQ(mul_mod_u64(0, 12345, 7), 0u);
  EXPECT_EQ(mul_mod_u64(1ULL << 62, 4, 1000003), (1ULL << 62) % 1000003 * 4 %
                                                      1000003);
}

TEST(NumberTheory, MulModHandlesHugeOperands) {
  const std::uint64_t m = 0xffffffffffffffc5ULL;  // large prime
  // (m-1)^2 mod m == 1.
  EXPECT_EQ(mul_mod_u64(m - 1, m - 1, m), 1u);
}

TEST(NumberTheory, PowMod) {
  EXPECT_EQ(pow_mod_u64(2, 10, 1000000007), 1024u);
  EXPECT_EQ(pow_mod_u64(5, 0, 13), 1u);
  // Fermat: a^(p-1) = 1 mod p.
  EXPECT_EQ(pow_mod_u64(3, 1000003 - 1, 1000003), 1u);
}

TEST(NumberTheory, IsPrimeSmall) {
  EXPECT_FALSE(is_prime_u64(0));
  EXPECT_FALSE(is_prime_u64(1));
  EXPECT_TRUE(is_prime_u64(2));
  EXPECT_TRUE(is_prime_u64(3));
  EXPECT_FALSE(is_prime_u64(4));
  EXPECT_TRUE(is_prime_u64(5));
  EXPECT_FALSE(is_prime_u64(1000001));  // 101 * 9901
  EXPECT_TRUE(is_prime_u64(1000003));
}

TEST(NumberTheory, IsPrimeLarge) {
  EXPECT_TRUE(is_prime_u64(0xffffffffffffffc5ULL));   // 2^64 - 59
  EXPECT_FALSE(is_prime_u64(0xffffffffffffffc4ULL));
  EXPECT_TRUE(is_prime_u64((1ULL << 61) - 1));        // Mersenne prime M61
  EXPECT_FALSE(is_prime_u64((1ULL << 62) - 1));
  // Carmichael numbers must not fool the deterministic witness set.
  EXPECT_FALSE(is_prime_u64(561));
  EXPECT_FALSE(is_prime_u64(1105));
  EXPECT_FALSE(is_prime_u64(825265));
}

TEST(CyclicPermutation, CoversDomainExactlyOnce) {
  for (const std::uint64_t n : {8ULL, 100ULL, 1000ULL, 65536ULL}) {
    CyclicPermutation perm{n, 42};
    std::set<std::uint64_t> seen;
    std::uint64_t out = 0;
    while (perm.next(out)) {
      EXPECT_LT(out, n);
      EXPECT_TRUE(seen.insert(out).second) << "dup " << out << " n=" << n;
    }
    EXPECT_EQ(seen.size(), n);
    // Exhausted: further next() calls fail.
    EXPECT_FALSE(perm.next(out));
  }
}

TEST(CyclicPermutation, TinyDomainsStillCover) {
  for (const std::uint64_t n : {1ULL, 2ULL, 3ULL, 7ULL}) {
    CyclicPermutation perm{n, 9};
    std::set<std::uint64_t> seen;
    std::uint64_t out = 0;
    while (perm.next(out)) seen.insert(out);
    EXPECT_EQ(seen.size(), n);
  }
}

TEST(CyclicPermutation, SameSeedSameOrder) {
  CyclicPermutation a{10000, 7};
  CyclicPermutation b{10000, 7};
  std::uint64_t x = 0;
  std::uint64_t y = 0;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(a.next(x));
    ASSERT_TRUE(b.next(y));
    EXPECT_EQ(x, y);
  }
}

TEST(CyclicPermutation, DifferentSeedsDifferentOrder) {
  CyclicPermutation a{10000, 7};
  CyclicPermutation b{10000, 8};
  std::uint64_t x = 0;
  std::uint64_t y = 0;
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(a.next(x));
    ASSERT_TRUE(b.next(y));
    if (x == y) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST(CyclicPermutation, ResetReplaysIdenticalOrder) {
  CyclicPermutation perm{5000, 3};
  std::vector<std::uint64_t> first;
  std::uint64_t out = 0;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(perm.next(out));
    first.push_back(out);
  }
  perm.reset();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(perm.next(out));
    EXPECT_EQ(out, first[static_cast<std::size_t>(i)]);
  }
}

TEST(CyclicPermutation, PrimeIsSafeAndAboveN) {
  CyclicPermutation perm{65536, 1};
  const std::uint64_t p = perm.prime();
  EXPECT_GT(p, 65536u);
  EXPECT_TRUE(is_prime_u64(p));
  EXPECT_TRUE(is_prime_u64((p - 1) / 2));  // safe prime
}

TEST(CyclicPermutation, OrderLooksScrambled) {
  CyclicPermutation perm{1 << 16, 11};
  std::uint64_t prev = 0;
  ASSERT_TRUE(perm.next(prev));
  int ascending_steps = 0;
  std::uint64_t cur = 0;
  constexpr int kSamples = 1000;
  for (int i = 0; i < kSamples; ++i) {
    ASSERT_TRUE(perm.next(cur));
    if (cur == prev + 1) ++ascending_steps;
    prev = cur;
  }
  EXPECT_LT(ascending_steps, 5);
}

/// Property: coverage holds for awkward sizes around prime gaps and powers
/// of two.
class PermutationSizes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PermutationSizes, ExactCoverage) {
  const std::uint64_t n = GetParam();
  CyclicPermutation perm{n, 0xD00D};
  std::vector<bool> seen(n, false);
  std::uint64_t out = 0;
  std::uint64_t count = 0;
  while (perm.next(out)) {
    ASSERT_LT(out, n);
    ASSERT_FALSE(seen[out]);
    seen[out] = true;
    ++count;
  }
  EXPECT_EQ(count, n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PermutationSizes,
                         ::testing::Values(8ULL, 9ULL, 255ULL, 256ULL, 257ULL,
                                           1023ULL, 1024ULL, 4095ULL,
                                           65535ULL, 65537ULL, 262144ULL));

}  // namespace
}  // namespace scent::probe
