// Tests for target generation, the prober engine (wire and fast paths),
// and the yarrp-style traceroute.
#include <gtest/gtest.h>

#include <set>

#include "probe/prober.h"
#include "probe/target_generator.h"
#include "probe/traceroute.h"
#include "sim/scenario.h"
#include "telemetry/metrics.h"

namespace scent::probe {
namespace {

net::Prefix pfx(const char* text) { return *net::Prefix::parse(text); }

// ---- target_in / SubnetTargets --------------------------------------------

TEST(TargetGenerator, TargetStaysInsideSubnet) {
  const net::Prefix p = pfx("2001:db8:12:3400::/56");
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    EXPECT_TRUE(p.contains(target_in(p, seed)));
  }
}

TEST(TargetGenerator, TargetIsDeterministicPerSeed) {
  const net::Prefix p = pfx("2001:db8::/64");
  EXPECT_EQ(target_in(p, 1), target_in(p, 1));
  EXPECT_NE(target_in(p, 1), target_in(p, 2));
}

TEST(TargetGenerator, TargetsDifferAcrossSubnets) {
  const net::Prefix parent = pfx("2001:db8::/48");
  std::set<net::Ipv6Address> targets;
  for (std::uint64_t i = 0; i < 256; ++i) {
    targets.insert(target_in(parent.subnet(56, net::Uint128{i}), 7));
  }
  EXPECT_EQ(targets.size(), 256u);
}

TEST(TargetGenerator, SubnetTargetsCoverEverySubnetOnce) {
  SubnetTargets gen{pfx("2001:db8::/48"), 56, 5};
  EXPECT_EQ(gen.size(), 256u);
  std::set<std::uint64_t> subnets;
  net::Ipv6Address a;
  while (gen.next(a)) {
    EXPECT_TRUE(pfx("2001:db8::/48").contains(a));
    subnets.insert(a.network() >> 8 & 0xff);
  }
  EXPECT_EQ(subnets.size(), 256u);
}

TEST(TargetGenerator, SubLengthClampedToParent) {
  SubnetTargets gen{pfx("2001:db8::/48"), 32, 5};
  EXPECT_EQ(gen.size(), 1u);
}

TEST(TargetGenerator, MaterializedSweepMatchesGenerator) {
  const auto vec = targets_for(pfx("2001:db8::/56"), 64, 9);
  EXPECT_EQ(vec.size(), 256u);
  SubnetTargets gen{pfx("2001:db8::/56"), 64, 9};
  net::Ipv6Address a;
  std::size_t i = 0;
  while (gen.next(a)) {
    ASSERT_LT(i, vec.size());
    EXPECT_EQ(a, vec[i++]);
  }
}

// ---- Prober ----------------------------------------------------------------

class ProberTest : public ::testing::Test {
 protected:
  ProberTest() : world_(sim::make_tiny_world(3, 16)), clock_(sim::hours(12)) {}

  sim::PaperWorld world_;
  sim::VirtualClock clock_;

  net::Ipv6Address device_target(std::size_t provider, std::size_t device) {
    const auto& p = world_.internet.provider(provider);
    const net::Prefix alloc =
        p.allocation({0, device}, clock_.now());
    return target_in(alloc, 1234);
  }
};

TEST_F(ProberTest, WireAndFastPathsAgree) {
  ProberOptions wire_opts;
  wire_opts.wire_mode = true;
  ProberOptions fast_opts;
  fast_opts.wire_mode = false;

  // Separate clocks so pacing does not interleave times.
  sim::VirtualClock c1{sim::hours(12)};
  sim::VirtualClock c2{sim::hours(12)};
  Prober wire_prober{world_.internet, c1, wire_opts};
  Prober fast_prober{world_.internet, c2, fast_opts};

  for (std::size_t d = 0; d < 16; ++d) {
    const auto target = device_target(world_.versatel, d);
    const auto rw = wire_prober.probe_one(target);
    const auto rf = fast_prober.probe_one(target);
    EXPECT_EQ(rw.responded, rf.responded) << d;
    if (rw.responded && rf.responded) {
      EXPECT_EQ(rw.response_source, rf.response_source);
      EXPECT_EQ(rw.type, rf.type);
      EXPECT_EQ(rw.code, rf.code);
    }
  }
}

TEST_F(ProberTest, PacingAdvancesClockAtConfiguredRate) {
  ProberOptions opts;
  opts.packets_per_second = 10000;
  Prober prober{world_.internet, clock_, opts};
  const sim::TimePoint start = clock_.now();
  for (int i = 0; i < 100; ++i) {
    (void)prober.probe_one(device_target(world_.versatel, 0));
  }
  EXPECT_EQ(clock_.now() - start, 100 * (sim::kSecond / 10000));
}

TEST_F(ProberTest, CountersTrackSentAndReceived) {
  Prober prober{world_.internet, clock_};
  (void)prober.probe_one(device_target(world_.versatel, 0));
  (void)prober.probe_one(
      *net::Ipv6Address::parse("2a0f:ffff::1"));  // unrouted
  EXPECT_EQ(prober.counters().sent, 2u);
  EXPECT_EQ(prober.counters().received, 1u);
  prober.reset_counters();
  EXPECT_EQ(prober.counters().sent, 0u);
}

TEST_F(ProberTest, CountersAccumulateAcrossSweepsAndResetCleanly) {
  Prober prober{world_.internet, clock_};
  telemetry::Registry registry;
  prober.attach_telemetry(registry);

  const auto& pool = world_.internet.provider(world_.versatel).pools()[0];
  const std::uint64_t per_sweep =
      SubnetTargets{pool.config().prefix, 56, 0xABC}.size();

  const std::vector<net::Ipv6Address> targets = {
      device_target(world_.versatel, 0),
      *net::Ipv6Address::parse("2a0f:ffff::1"),  // unrouted
  };
  (void)prober.sweep(targets);
  (void)prober.sweep_subnets(pool.config().prefix, 56, 0xABC);
  (void)prober.sweep_subnets(pool.config().prefix, 56, 0xDEF);

  // Every probe path funnels through probe_one: the prober's own counters
  // and the registry mirror agree, across sweep and sweep_subnets alike.
  const std::uint64_t expected_sent = targets.size() + 2 * per_sweep;
  const std::uint64_t expected_received = 1 + 2 * 16;  // 16 tiny-world CPEs
  EXPECT_EQ(prober.counters().sent, expected_sent);
  EXPECT_EQ(prober.counters().received, expected_received);
  EXPECT_EQ(registry.counter("probe.sent").value(), expected_sent);
  EXPECT_EQ(registry.counter("probe.received").value(), expected_received);

  // reset_counters() clears the prober's counters but leaves the registry
  // accumulating (campaign code reads per-day deltas from it).
  prober.reset_counters();
  EXPECT_EQ(prober.counters().sent, 0u);
  EXPECT_EQ(prober.counters().received, 0u);
  EXPECT_EQ(registry.counter("probe.sent").value(), expected_sent);

  (void)prober.probe_one(device_target(world_.versatel, 1));
  EXPECT_EQ(prober.counters().sent, 1u);
  EXPECT_EQ(registry.counter("probe.sent").value(), expected_sent + 1);
}

TEST_F(ProberTest, SweepReturnsOnlyResponsive) {
  Prober prober{world_.internet, clock_};
  const std::vector<net::Ipv6Address> targets = {
      device_target(world_.versatel, 0),
      *net::Ipv6Address::parse("2a0f:ffff::1"),
      device_target(world_.versatel, 1),
  };
  const auto results = prober.sweep(targets);
  EXPECT_EQ(results.size(), 2u);
  for (const auto& r : results) EXPECT_TRUE(r.responded);
}

TEST_F(ProberTest, SweepSubnetsFindsAllDevicesInPool) {
  Prober prober{world_.internet, clock_};
  const auto& pool = world_.internet.provider(world_.versatel).pools()[0];
  const auto results =
      prober.sweep_subnets(pool.config().prefix, 56, 0xABC);
  // 16 devices, every /56 probed once: every device responds exactly once.
  std::set<net::Ipv6Address> sources;
  for (const auto& r : results) sources.insert(r.response_source);
  EXPECT_EQ(sources.size(), 16u);
  EXPECT_EQ(results.size(), 16u);
}

TEST_F(ProberTest, ResponsesCarryEui64SourceOfCpe) {
  Prober prober{world_.internet, clock_};
  const auto r = prober.probe_one(device_target(world_.versatel, 3));
  ASSERT_TRUE(r.responded);
  ASSERT_TRUE(net::is_eui64(r.response_source));
  const auto mac = net::embedded_mac(r.response_source);
  const auto& devices =
      world_.internet.provider(world_.versatel).pools()[0].devices();
  EXPECT_EQ(*mac, devices[3].mac);
}

// ---- Traceroute ------------------------------------------------------------

TEST_F(ProberTest, TracerouteReachesCpeAsLastHop) {
  Prober prober{world_.internet, clock_};
  const auto result = traceroute(prober, device_target(world_.versatel, 2), 16);
  ASSERT_FALSE(result.hops.empty());
  const auto& provider = world_.internet.provider(world_.versatel);
  // Core hops first, Time Exceeded, statically addressed.
  ASSERT_GE(result.hops.size(), provider.config().path_length);
  for (unsigned h = 0; h < provider.config().path_length; ++h) {
    EXPECT_EQ(result.hops[h].type, wire::Icmpv6Type::kTimeExceeded);
    EXPECT_FALSE(net::is_eui64(result.hops[h].address));
  }
  // Last hop: the CPE, terminal error, EUI-64 source.
  const auto last = result.last_hop();
  ASSERT_TRUE(last.has_value());
  EXPECT_TRUE(net::is_eui64(last->address));
  EXPECT_NE(last->type, wire::Icmpv6Type::kTimeExceeded);
}

TEST_F(ProberTest, TracerouteToUnroutedSpaceFindsNothing) {
  Prober prober{world_.internet, clock_};
  const auto result =
      traceroute(prober, *net::Ipv6Address::parse("2a0f:dead::1"), 8);
  EXPECT_TRUE(result.hops.empty());
  EXPECT_FALSE(result.last_hop().has_value());
}

TEST_F(ProberTest, TracerouteToUnallocatedSlotStopsAtCore) {
  Prober prober{world_.internet, clock_};
  // Slot 900 of the /46 pool is unoccupied in the tiny world (16 devices).
  const auto& pool = world_.internet.provider(world_.versatel).pools()[0];
  const net::Ipv6Address target =
      target_in(pool.config().prefix.subnet(56, net::Uint128{900}), 5);
  const auto result = traceroute(prober, target, 8);
  const auto& provider = world_.internet.provider(world_.versatel);
  EXPECT_EQ(result.hops.size(), provider.config().path_length);
  for (const auto& hop : result.hops) {
    EXPECT_EQ(hop.type, wire::Icmpv6Type::kTimeExceeded);
  }
}

}  // namespace
}  // namespace scent::probe
