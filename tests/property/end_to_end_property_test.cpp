// Cross-module property sweeps: for every combination of allocation size,
// pool shape, and rotation policy, the measurement pipeline must recover
// the simulator's ground truth. These are the invariants the whole
// reproduction rests on.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/inference.h"
#include "core/tracker.h"
#include "probe/prober.h"
#include "probe/target_generator.h"
#include "sim/scenario.h"

namespace scent {
namespace {

struct WorldParams {
  unsigned pool_length;
  unsigned allocation_length;
  sim::RotationPolicy::Kind kind;
  sim::Placement placement;
};

std::string param_name(
    const ::testing::TestParamInfo<WorldParams>& info) {
  const char* kind = "Static";
  if (info.param.kind == sim::RotationPolicy::Kind::kStride) kind = "Stride";
  if (info.param.kind == sim::RotationPolicy::Kind::kShuffle) kind = "Shuffle";
  return "Pool" + std::to_string(info.param.pool_length) + "Alloc" +
         std::to_string(info.param.allocation_length) + kind +
         (info.param.placement == sim::Placement::kContiguous ? "Contig"
                                                              : "Scatter");
}

class PipelineProperty : public ::testing::TestWithParam<WorldParams> {
 protected:
  PipelineProperty() {
    const WorldParams& p = GetParam();
    sim::WorldBuilder builder{0x9009 + p.pool_length * 131 +
                              p.allocation_length};
    sim::ProviderSpec spec;
    spec.asn = 65111;
    spec.name = "PropertyNet";
    spec.country = "DE";
    spec.advertisement = *net::Prefix::parse("2001:db8::/32");
    spec.vendors = {{net::Oui{0x3810d5}, 1.0}};
    spec.eui64_fraction = 1.0;
    spec.low_byte_fraction = 0.0;
    spec.silent_fraction = 0.0;

    sim::PoolSpec pool;
    pool.pool_length = p.pool_length;
    pool.allocation_length = p.allocation_length;
    pool.placement = p.placement;
    pool.rotation.kind = p.kind;
    pool.rotation.period = sim::kDay;
    pool.rotation.window_length = sim::hours(6);
    pool.rotation.stride = 7;
    const std::uint64_t slots =
        1ULL << (p.allocation_length - p.pool_length);
    pool.device_count = static_cast<std::size_t>(
        std::min<std::uint64_t>(48, (slots * 3) / 4));
    spec.pools.push_back(pool);

    provider_index_ = builder.add_provider(spec);
    world_ = builder.take();
  }

  const sim::RotationPool& pool() {
    return world_.provider(provider_index_).pools()[0];
  }

  sim::Internet world_;
  std::size_t provider_index_ = 0;
};

TEST_P(PipelineProperty, EveryDeviceDiscoverableByAllocationSweep) {
  sim::VirtualClock clock{sim::hours(12)};
  probe::Prober prober{world_, clock,
                       {.packets_per_second = 1000000, .wire_mode = false}};
  const auto results = prober.sweep_subnets(
      pool().config().prefix, pool().config().allocation_length, 0xD15C);
  std::set<net::MacAddress> seen;
  for (const auto& r : results) {
    ASSERT_TRUE(net::is_eui64(r.response_source));
    seen.insert(*net::embedded_mac(r.response_source));
  }
  EXPECT_EQ(seen.size(), pool().devices().size());
}

TEST_P(PipelineProperty, Algorithm1RecoversAllocationLength) {
  if (pool().config().allocation_length - pool().config().prefix.length() > 14) {
    GTEST_SKIP() << "per-/64 sweep too large for a unit test";
  }
  sim::VirtualClock clock{sim::hours(12)};
  probe::Prober prober{world_, clock,
                       {.packets_per_second = 1000000, .wire_mode = false}};
  core::AllocationSizeInference inference;
  const auto results =
      prober.sweep_subnets(pool().config().prefix, 64, 0xA1);
  for (const auto& r : results) {
    inference.observe(r.target, r.response_source);
  }
  ASSERT_TRUE(inference.median_length().has_value());
  EXPECT_EQ(*inference.median_length(), pool().config().allocation_length);
}

TEST_P(PipelineProperty, Algorithm2RecoversPoolOnceCoverageSuffices) {
  if (!pool().config().rotation.rotates()) {
    GTEST_SKIP() << "static pools have no rotation to infer";
  }
  sim::VirtualClock clock{sim::hours(12)};
  probe::Prober prober{world_, clock,
                       {.packets_per_second = 1000000, .wire_mode = false}};
  core::RotationPoolInference inference;
  // Enough days for both stride-7 and shuffle policies to cover the pool.
  const unsigned days = pool().config().rotation.kind ==
                                sim::RotationPolicy::Kind::kShuffle
                            ? 10
                            : 40;
  for (unsigned day = 0; day < days; ++day) {
    clock.advance_to(sim::days(day) + sim::hours(12));
    const auto results = prober.sweep_subnets(
        pool().config().prefix, pool().config().allocation_length,
        0xA2 + day);
    for (const auto& r : results) inference.observe(r.response_source);
  }
  ASSERT_TRUE(inference.median_length().has_value());
  // Stride 7 with <= 40 days may not wrap small pools fully; the inferred
  // pool must never be *wider* than the truth and must show rotation.
  EXPECT_GE(*inference.median_length(), pool().config().prefix.length());
  EXPECT_LT(*inference.median_length(), 64u);
}

TEST_P(PipelineProperty, TrackerFollowsAnyDeviceThroughAWeek) {
  sim::VirtualClock clock{sim::hours(12)};
  probe::Prober prober{world_, clock,
                       {.packets_per_second = 1000000, .wire_mode = false}};
  core::TrackerConfig config;
  config.target_mac = pool().devices()[pool().devices().size() / 2].mac;
  config.pool = pool().config().prefix;
  config.allocation_length = pool().config().allocation_length;
  config.seed = 0x77;
  core::Tracker tracker{prober, config};
  for (std::int64_t day = 0; day < 7; ++day) {
    clock.advance_to(sim::days(day) + sim::hours(12));
    const auto attempt = tracker.locate(day);
    ASSERT_TRUE(attempt.found) << "day " << day;
    EXPECT_EQ(net::embedded_mac(attempt.address), config.target_mac);
    EXPECT_TRUE(config.pool.contains(attempt.address));
  }
}

TEST_P(PipelineProperty, EuiIidIsInvariantAcrossRotations) {
  std::set<std::uint64_t> iids;
  std::set<std::uint64_t> networks;
  for (int day = 0; day < 10; ++day) {
    const auto wan =
        pool().wan_address_of(1, sim::days(day) + sim::hours(12));
    iids.insert(wan.iid());
    networks.insert(wan.network());
    EXPECT_TRUE(pool().config().prefix.contains(wan));
  }
  EXPECT_EQ(iids.size(), 1u);  // the scent never changes
  if (pool().config().rotation.rotates()) {
    EXPECT_GT(networks.size(), 1u);  // but the prefix does
  } else {
    EXPECT_EQ(networks.size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PipelineProperty,
    ::testing::Values(
        WorldParams{46, 56, sim::RotationPolicy::Kind::kStride,
                    sim::Placement::kContiguous},
        WorldParams{48, 56, sim::RotationPolicy::Kind::kShuffle,
                    sim::Placement::kScattered},
        WorldParams{48, 56, sim::RotationPolicy::Kind::kStatic,
                    sim::Placement::kScattered},
        WorldParams{50, 60, sim::RotationPolicy::Kind::kStride,
                    sim::Placement::kContiguous},
        WorldParams{52, 60, sim::RotationPolicy::Kind::kShuffle,
                    sim::Placement::kScattered},
        WorldParams{54, 64, sim::RotationPolicy::Kind::kStride,
                    sim::Placement::kContiguous},
        WorldParams{56, 64, sim::RotationPolicy::Kind::kShuffle,
                    sim::Placement::kScattered},
        WorldParams{44, 48, sim::RotationPolicy::Kind::kShuffle,
                    sim::Placement::kScattered},
        WorldParams{60, 64, sim::RotationPolicy::Kind::kStatic,
                    sim::Placement::kScattered},
        WorldParams{62, 64, sim::RotationPolicy::Kind::kStride,
                    sim::Placement::kContiguous}),
    param_name);

}  // namespace
}  // namespace scent
