// Tests for the wire layer: buffer codecs, checksums, IPv6/ICMPv6 packets.
#include <gtest/gtest.h>

#include "wire/buffer.h"
#include "wire/checksum.h"
#include "wire/icmpv6.h"
#include "wire/ipv6_header.h"

namespace scent::wire {
namespace {

net::Ipv6Address addr(const char* text) {
  return *net::Ipv6Address::parse(text);
}

// ---- BufferWriter / BufferReader ---------------------------------------

TEST(Buffer, WriterProducesNetworkOrder) {
  std::vector<std::uint8_t> bytes;
  BufferWriter w{bytes};
  w.u8(0x01);
  w.u16(0x0203);
  w.u32(0x04050607);
  w.u64(0x08090a0b0c0d0e0fULL);
  ASSERT_EQ(bytes.size(), 15u);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    EXPECT_EQ(bytes[i], i + 1) << "byte " << i;
  }
}

TEST(Buffer, ReaderRoundTripsWriter) {
  std::vector<std::uint8_t> bytes;
  BufferWriter w{bytes};
  w.u8(0xab);
  w.u16(0xcdef);
  w.u32(0x12345678);
  w.u64(0x9abcdef011223344ULL);
  BufferReader r{bytes};
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xcdef);
  EXPECT_EQ(r.u32(), 0x12345678u);
  EXPECT_EQ(r.u64(), 0x9abcdef011223344ULL);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.remaining().empty());
}

TEST(Buffer, ReaderSetsStickyErrorOnTruncation) {
  const std::vector<std::uint8_t> bytes{0x01};
  BufferReader r{bytes};
  EXPECT_EQ(r.u16(), 0u);
  EXPECT_FALSE(r.ok());
  // Error is sticky: subsequent reads remain flagged.
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Buffer, ReaderBytesViewAndTruncation) {
  const std::vector<std::uint8_t> bytes{1, 2, 3, 4};
  BufferReader r{bytes};
  const auto view = r.bytes(3);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[2], 3);
  EXPECT_TRUE(r.bytes(2).empty());
  EXPECT_FALSE(r.ok());
}

TEST(Buffer, PatchU16) {
  std::vector<std::uint8_t> bytes;
  BufferWriter w{bytes};
  w.u32(0);
  w.patch_u16(1, 0xbeef);
  EXPECT_EQ(bytes[1], 0xbe);
  EXPECT_EQ(bytes[2], 0xef);
}

// ---- Checksum ------------------------------------------------------------

TEST(Checksum, Rfc1071ReferenceVector) {
  // RFC 1071 example words 0x0001 0xf203 0xf4f5 0xf6f7: sum 0x2ddf0,
  // folded 0xddf2, complement 0x220d.
  ChecksumAccumulator acc;
  acc.add_u16(0x0001);
  acc.add_u16(0xf203);
  acc.add_u16(0xf4f5);
  acc.add_u16(0xf6f7);
  EXPECT_EQ(acc.finalize(), 0x220d);
}

TEST(Checksum, OddByteIsPaddedWithZero) {
  ChecksumAccumulator a;
  const std::uint8_t odd[] = {0x12, 0x34, 0x56};
  a.add_bytes(odd);
  ChecksumAccumulator b;
  b.add_u16(0x1234);
  b.add_u16(0x5600);
  EXPECT_EQ(a.finalize(), b.finalize());
}

TEST(Checksum, ZeroResultTransmitsAsAllOnes) {
  ChecksumAccumulator acc;
  acc.add_u16(0xffff);
  EXPECT_EQ(acc.finalize(), 0xffff);
}

TEST(Checksum, Icmpv6PseudoHeaderDependsOnAddresses) {
  const std::uint8_t msg[] = {128, 0, 0, 0, 0, 1, 0, 1};
  const auto c1 = icmpv6_checksum(addr("2001:db8::1"), addr("2001:db8::2"), msg);
  const auto c2 = icmpv6_checksum(addr("2001:db8::1"), addr("2001:db8::3"), msg);
  EXPECT_NE(c1, c2);
}

// ---- IPv6 header ----------------------------------------------------------

TEST(Ipv6Header, SerializeParseRoundTrip) {
  Ipv6Header h;
  h.traffic_class = 0xab;
  h.flow_label = 0x12345;
  h.payload_length = 64;
  h.hop_limit = 3;
  h.source = addr("2001:db8::1");
  h.destination = addr("2003:e2::42");

  std::vector<std::uint8_t> bytes;
  BufferWriter w{bytes};
  h.serialize(w);
  ASSERT_EQ(bytes.size(), kIpv6HeaderSize);
  EXPECT_EQ(bytes[0] >> 4, 6);  // version

  BufferReader r{bytes};
  const auto parsed = Ipv6Header::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->traffic_class, 0xab);
  EXPECT_EQ(parsed->flow_label, 0x12345u);
  EXPECT_EQ(parsed->payload_length, 64);
  EXPECT_EQ(parsed->hop_limit, 3);
  EXPECT_EQ(parsed->source, h.source);
  EXPECT_EQ(parsed->destination, h.destination);
}

TEST(Ipv6Header, ParseRejectsWrongVersion) {
  std::vector<std::uint8_t> bytes(kIpv6HeaderSize, 0);
  bytes[0] = 0x40;  // version 4
  BufferReader r{bytes};
  EXPECT_FALSE(Ipv6Header::parse(r).has_value());
}

TEST(Ipv6Header, ParseRejectsTruncation) {
  const std::vector<std::uint8_t> bytes(kIpv6HeaderSize - 1, 0x60);
  BufferReader r{bytes};
  EXPECT_FALSE(Ipv6Header::parse(r).has_value());
}

// ---- ICMPv6 packets -------------------------------------------------------

TEST(Icmpv6, EchoRequestRoundTrip) {
  const auto pkt = build_echo_request(addr("2001:db8::1"),
                                      addr("2001:16b8:2:300::42"), 0x5C37,
                                      7, 64);
  const auto parsed = parse_packet(pkt);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->icmp.type, Icmpv6Type::kEchoRequest);
  EXPECT_EQ(parsed->icmp.identifier, 0x5C37);
  EXPECT_EQ(parsed->icmp.sequence, 7);
  EXPECT_EQ(parsed->ip.hop_limit, 64);
  EXPECT_EQ(parsed->ip.source, addr("2001:db8::1"));
  EXPECT_EQ(parsed->ip.destination, addr("2001:16b8:2:300::42"));
  EXPECT_FALSE(parsed->icmp.is_error());
}

TEST(Icmpv6, EchoReplyRoundTrip) {
  const auto pkt =
      build_echo_reply(addr("2001:db8::2"), addr("2001:db8::1"), 1, 2);
  const auto parsed = parse_packet(pkt);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->icmp.type, Icmpv6Type::kEchoReply);
}

TEST(Icmpv6, CorruptedChecksumRejected) {
  auto pkt = build_echo_request(addr("2001:db8::1"), addr("2001:db8::2"), 1,
                                1, 64);
  pkt[kIpv6HeaderSize + 2] ^= 0x01;  // flip a checksum bit
  EXPECT_FALSE(parse_packet(pkt).has_value());
}

TEST(Icmpv6, CorruptedPayloadRejected) {
  auto pkt = build_echo_request(addr("2001:db8::1"), addr("2001:db8::2"), 1,
                                1, 64);
  pkt.back() ^= 0xff;
  EXPECT_FALSE(parse_packet(pkt).has_value());
}

TEST(Icmpv6, TruncatedPacketRejected) {
  auto pkt = build_echo_request(addr("2001:db8::1"), addr("2001:db8::2"), 1,
                                1, 64);
  pkt.pop_back();
  EXPECT_FALSE(parse_packet(pkt).has_value());
}

TEST(Icmpv6, UnknownTypeRejected) {
  // Build a syntactically valid packet with type 200 and a correct
  // checksum; the parser only accepts the subset this system exchanges.
  std::vector<std::uint8_t> body{200, 0, 0, 0, 0, 0, 0, 0};
  Ipv6Header ip;
  ip.source = addr("2001:db8::1");
  ip.destination = addr("2001:db8::2");
  ip.payload_length = static_cast<std::uint16_t>(body.size());
  std::vector<std::uint8_t> pkt;
  BufferWriter w{pkt};
  ip.serialize(w);
  const std::size_t off = pkt.size();
  w.bytes(body);
  w.patch_u16(off + 2, icmpv6_checksum(ip.source, ip.destination,
                                       std::span<const std::uint8_t>{pkt}
                                           .subspan(off)));
  EXPECT_FALSE(parse_packet(pkt).has_value());
}

TEST(Icmpv6, ErrorQuotesInvokingPacketAndExtractsProbe) {
  const auto request = build_echo_request(
      addr("2001:db8::1"), addr("2001:16b8:100:5600:dead:beef:1234:5678"),
      0x5C37, 99, 64);
  const auto error = build_error(
      addr("2001:16b8:100:5600:3a10:d5ff:feaa:bbcc"), addr("2001:db8::1"),
      Icmpv6Type::kDestinationUnreachable,
      static_cast<std::uint8_t>(UnreachableCode::kAdminProhibited), request);

  const auto parsed = parse_packet(error);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->icmp.is_error());
  EXPECT_EQ(parsed->icmp.code, 1);
  EXPECT_EQ(parsed->ip.source,
            addr("2001:16b8:100:5600:3a10:d5ff:feaa:bbcc"));

  const auto invoking = extract_invoking_probe(parsed->icmp);
  ASSERT_TRUE(invoking.has_value());
  EXPECT_EQ(invoking->target,
            addr("2001:16b8:100:5600:dead:beef:1234:5678"));
  EXPECT_EQ(invoking->identifier, 0x5C37);
  EXPECT_EQ(invoking->sequence, 99);
}

TEST(Icmpv6, ErrorTruncatesQuoteToMinimumMtu) {
  // An oversized invoking packet must be truncated so the error fits in
  // 1280 bytes (RFC 4443 s2.4(c)).
  std::vector<std::uint8_t> huge(4000, 0x5a);
  const auto error =
      build_error(addr("2001:db8::9"), addr("2001:db8::1"),
                  Icmpv6Type::kTimeExceeded, 0, huge);
  EXPECT_LE(error.size(), 1280u);
  const auto parsed = parse_packet(error);
  ASSERT_TRUE(parsed.has_value());
}

TEST(Icmpv6, ExtractInvokingProbeHandlesShallowQuote) {
  // A quote containing only the inner IPv6 header (no echo fields) still
  // yields the target, with identifier/sequence zero.
  Icmpv6Message msg;
  msg.type = Icmpv6Type::kDestinationUnreachable;
  msg.code = 0;
  Ipv6Header inner;
  inner.source = addr("2001:db8::1");
  inner.destination = addr("2001:db8:ffff::2");
  BufferWriter w{msg.invoking_packet};
  inner.serialize(w);
  const auto probe = extract_invoking_probe(msg);
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(probe->target, addr("2001:db8:ffff::2"));
  EXPECT_EQ(probe->identifier, 0);
}

TEST(Icmpv6, ExtractInvokingProbeRejectsNonError) {
  Icmpv6Message msg;
  msg.type = Icmpv6Type::kEchoReply;
  EXPECT_FALSE(extract_invoking_probe(msg).has_value());
}

TEST(Icmpv6, ExtractInvokingProbeRejectsGarbageQuote) {
  Icmpv6Message msg;
  msg.type = Icmpv6Type::kDestinationUnreachable;
  msg.invoking_packet = {0x01, 0x02, 0x03};
  EXPECT_FALSE(extract_invoking_probe(msg).has_value());
}

TEST(Icmpv6, TypeNames) {
  EXPECT_EQ(to_string(Icmpv6Type::kEchoRequest), "echo-request");
  EXPECT_EQ(to_string(Icmpv6Type::kDestinationUnreachable),
            "destination-unreachable");
  EXPECT_EQ(to_string(Icmpv6Type::kTimeExceeded), "time-exceeded");
}

/// Property: every build_error flavor parses, checksum-verifies, and
/// recovers the original probe target.
class ErrorFlavors
    : public ::testing::TestWithParam<std::pair<Icmpv6Type, std::uint8_t>> {};

TEST_P(ErrorFlavors, RoundTripsWithQuote) {
  const auto [type, code] = GetParam();
  const auto request = build_echo_request(addr("2001:db8::1"),
                                          addr("2a02:580:7::9"), 11, 22, 64);
  const auto error =
      build_error(addr("2a02:580:7::1"), addr("2001:db8::1"), type, code,
                  request);
  const auto parsed = parse_packet(error);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->icmp.type, type);
  EXPECT_EQ(parsed->icmp.code, code);
  const auto probe = extract_invoking_probe(parsed->icmp);
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(probe->target, addr("2a02:580:7::9"));
}

INSTANTIATE_TEST_SUITE_P(
    AllFlavors, ErrorFlavors,
    ::testing::Values(
        std::pair{Icmpv6Type::kDestinationUnreachable, std::uint8_t{0}},
        std::pair{Icmpv6Type::kDestinationUnreachable, std::uint8_t{1}},
        std::pair{Icmpv6Type::kDestinationUnreachable, std::uint8_t{3}},
        std::pair{Icmpv6Type::kTimeExceeded, std::uint8_t{0}}));

}  // namespace
}  // namespace scent::wire
