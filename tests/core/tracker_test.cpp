// Tests for the §6 tracking attack against simulated ground truth.
#include "core/tracker.h"

#include <gtest/gtest.h>

#include <set>

#include "probe/prober.h"
#include "sim/scenario.h"

namespace scent::core {
namespace {

class TrackerTest : public ::testing::Test {
 protected:
  TrackerTest()
      : world_(sim::make_tiny_world(11, 32)), clock_(sim::hours(12)),
        prober_(world_.internet, clock_) {}

  const sim::Provider& rotator() {
    return world_.internet.provider(world_.versatel);
  }

  TrackerConfig config_for_device(std::size_t device_index) {
    TrackerConfig c;
    c.target_mac = rotator().pools()[0].devices()[device_index].mac;
    c.pool = rotator().pools()[0].config().prefix;
    c.allocation_length = rotator().pools()[0].config().allocation_length;
    c.seed = 0x7AC;
    return c;
  }

  sim::PaperWorld world_;
  sim::VirtualClock clock_;
  probe::Prober prober_;
};

TEST_F(TrackerTest, FindsDeviceInItsCurrentAllocation) {
  Tracker tracker{prober_, config_for_device(5)};
  const TrackAttempt attempt = tracker.locate(0);
  ASSERT_TRUE(attempt.found);
  EXPECT_EQ(attempt.address,
            rotator().wan_address({0, 5}, clock_.now()));
  EXPECT_LE(attempt.probes_sent, 1024u);
  EXPECT_FALSE(attempt.found_by_prediction);
}

TEST_F(TrackerTest, ReFindsDeviceAfterEveryRotation) {
  Tracker tracker{prober_, config_for_device(7)};
  std::set<std::uint64_t> networks;
  for (std::int64_t day = 0; day < 5; ++day) {
    clock_.advance_to(sim::days(day) + sim::hours(12));
    const TrackAttempt attempt = tracker.locate(day);
    ASSERT_TRUE(attempt.found) << "day " << day;
    // Verify against ground truth.
    EXPECT_EQ(attempt.address, rotator().wan_address({0, 7}, clock_.now()));
    networks.insert(attempt.address.network());
  }
  // The device rotated daily: five distinct prefixes, one immutable IID.
  EXPECT_EQ(networks.size(), 5u);
  EXPECT_EQ(tracker.sightings().size(), 5u);
}

TEST_F(TrackerTest, ProbeCostBoundedByPoolSlots) {
  // One probe per /56 of the /46 pool: never more than 1024.
  Tracker tracker{prober_, config_for_device(0)};
  for (std::int64_t day = 0; day < 3; ++day) {
    clock_.advance_to(sim::days(day) + sim::hours(12));
    const TrackAttempt attempt = tracker.locate(day);
    ASSERT_TRUE(attempt.found);
    EXPECT_LE(attempt.probes_sent, 1024u);
  }
}

TEST_F(TrackerTest, WrongAllocationSizeCanMissDevice) {
  // Probing one address per /52 (too coarse, 64 probes) lands in the
  // device's actual /56 only by luck; probing per /64 within the pool
  // would always find it but costs 256x more than per-/56.
  TrackerConfig coarse = config_for_device(3);
  coarse.allocation_length = 52;
  Tracker tracker{prober_, coarse};
  const TrackAttempt attempt = tracker.locate(0);
  // The /52 sweep probes 64 random /52-blocks; the probe within the
  // device's /52 lands in one of its 16 /56s. Either way, the cost is 64.
  EXPECT_LE(attempt.probes_sent, 64u);
}

TEST_F(TrackerTest, UpdatePredictionLearnsStride) {
  Tracker tracker{prober_, config_for_device(9)};
  for (std::int64_t day = 0; day < 3; ++day) {
    clock_.advance_to(sim::days(day) + sim::hours(12));
    ASSERT_TRUE(tracker.locate(day).found);
  }
  ASSERT_TRUE(tracker.update_prediction());
  ASSERT_TRUE(tracker.config().prediction.has_value());
  EXPECT_EQ(tracker.config().prediction->stride, 236u);
}

TEST_F(TrackerTest, PredictionCollapsesProbeCost) {
  Tracker tracker{prober_, config_for_device(9)};
  for (std::int64_t day = 0; day < 3; ++day) {
    clock_.advance_to(sim::days(day) + sim::hours(12));
    ASSERT_TRUE(tracker.locate(day).found);
  }
  ASSERT_TRUE(tracker.update_prediction());

  clock_.advance_to(sim::days(3) + sim::hours(12));
  const TrackAttempt attempt = tracker.locate(3);
  ASSERT_TRUE(attempt.found);
  EXPECT_TRUE(attempt.found_by_prediction);
  // Predicted slot first: found within the tiny neighborhood.
  EXPECT_LE(attempt.probes_sent, 5u);
  EXPECT_EQ(attempt.address, rotator().wan_address({0, 9}, clock_.now()));
}

TEST_F(TrackerTest, DeviceOutsidePoolIsNotFound) {
  TrackerConfig config = config_for_device(0);
  // Search the wrong /46.
  config.pool = *net::Prefix::parse("2001:db8:200::/46");
  Tracker tracker{prober_, config};
  const TrackAttempt attempt = tracker.locate(0);
  EXPECT_FALSE(attempt.found);
  EXPECT_EQ(attempt.probes_sent, 1024u);  // exhausted the pool
}

TEST_F(TrackerTest, StaticProviderDeviceIsTriviallyTracked) {
  const sim::Provider& stat = world_.internet.provider(world_.viettel);
  TrackerConfig config;
  config.target_mac = stat.pools()[0].devices()[2].mac;
  config.pool = stat.pools()[0].config().prefix;
  config.allocation_length = stat.pools()[0].config().allocation_length;
  config.seed = 3;
  Tracker tracker{prober_, config};
  std::set<std::uint64_t> networks;
  for (std::int64_t day = 0; day < 3; ++day) {
    clock_.advance_to(sim::days(day) + sim::hours(12));
    const TrackAttempt attempt = tracker.locate(day);
    ASSERT_TRUE(attempt.found);
    networks.insert(attempt.address.network());
  }
  EXPECT_EQ(networks.size(), 1u);  // never moved
}

}  // namespace
}  // namespace scent::core
