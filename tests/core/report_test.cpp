// Tests for the report utilities: CDF, text tables, allocation grids.
#include "core/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace scent::core {
namespace {

TEST(Cdf, EmptyCdfIsSafe) {
  const Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.at(5.0), 0.0);
  EXPECT_EQ(cdf.quantile(0.5), 0.0);
  EXPECT_EQ(cdf.min(), 0.0);
  EXPECT_EQ(cdf.max(), 0.0);
  EXPECT_TRUE(cdf.steps().empty());
}

TEST(Cdf, AtIsCumulativeFractionAtOrBelow) {
  const Cdf cdf = Cdf::of(std::vector<int>{1, 2, 2, 3, 10});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.2);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.6);
  EXPECT_DOUBLE_EQ(cdf.at(9.99), 0.8);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(1e9), 1.0);
}

TEST(Cdf, QuantilesBracketDistribution) {
  std::vector<int> values;
  for (int i = 1; i <= 100; ++i) values.push_back(i);
  const Cdf cdf = Cdf::of(values);
  EXPECT_EQ(cdf.min(), 1.0);
  EXPECT_EQ(cdf.max(), 100.0);
  EXPECT_NEAR(cdf.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(cdf.quantile(0.25), 25.0, 1.0);
  EXPECT_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_EQ(cdf.quantile(1.0), 100.0);
  // Out-of-range q is clamped.
  EXPECT_EQ(cdf.quantile(-3.0), 1.0);
  EXPECT_EQ(cdf.quantile(7.0), 100.0);
}

TEST(Cdf, StepsAreDistinctAndMonotone) {
  const Cdf cdf = Cdf::of(std::vector<int>{5, 5, 5, 7, 9, 9});
  const auto steps = cdf.steps();
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].first, 5.0);
  EXPECT_DOUBLE_EQ(steps[0].second, 0.5);
  EXPECT_EQ(steps[1].first, 7.0);
  EXPECT_NEAR(steps[1].second, 4.0 / 6.0, 1e-12);
  EXPECT_EQ(steps[2].first, 9.0);
  EXPECT_DOUBLE_EQ(steps[2].second, 1.0);
}

TEST(TextTable, AlignsColumnsAndPadsMissingCells) {
  TextTable table{{"a", "long-header"}};
  table.add_row({"x", "1"});
  table.add_row({"yyyy"});  // short row: second cell padded
  const std::string out = table.to_string();
  std::istringstream lines{out};
  std::string header;
  std::string divider;
  std::string row1;
  std::string row2;
  std::getline(lines, header);
  std::getline(lines, divider);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(header.size(), divider.size());
  EXPECT_EQ(header.size(), row1.size());
  EXPECT_EQ(header.size(), row2.size());
  EXPECT_NE(header.find("long-header"), std::string::npos);
  EXPECT_NE(row2.find("yyyy"), std::string::npos);
}

TEST(AllocationGrid, InternAssignsStableIds) {
  AllocationGrid grid;
  const int a = grid.intern(111);
  const int b = grid.intern(222);
  EXPECT_NE(a, b);
  EXPECT_EQ(grid.intern(111), a);
  EXPECT_EQ(grid.distinct_sources(), 2u);
}

TEST(AllocationGrid, RenderShowsBandsAndSilence) {
  AllocationGrid grid;
  // Fill rows 0-127 (b7 < 128) with source A; leave the rest silent.
  const int id = grid.intern(42);
  for (unsigned b7 = 0; b7 < 128; ++b7) {
    for (unsigned b8 = 0; b8 < 256; ++b8) {
      grid.mark(static_cast<std::uint8_t>(b7), static_cast<std::uint8_t>(b8),
                id);
    }
  }
  const std::string out = grid.render(4, 8);
  std::istringstream lines{out};
  std::string row;
  std::getline(lines, row);
  EXPECT_EQ(row, "AAAAAAAA");
  std::getline(lines, row);
  EXPECT_EQ(row, "AAAAAAAA");
  std::getline(lines, row);
  EXPECT_EQ(row, "........");
  std::getline(lines, row);
  EXPECT_EQ(row, "........");
}

TEST(AllocationGrid, PaletteCyclesPastSixtyTwoSources) {
  AllocationGrid grid;
  for (int i = 0; i < 100; ++i) {
    grid.mark(0, static_cast<std::uint8_t>(i), grid.intern(1000 + i));
  }
  EXPECT_EQ(grid.distinct_sources(), 100u);
  const std::string out = grid.render(1, 256);
  EXPECT_EQ(out.find('.'), 100u);  // first silent cell right after the marks
}

}  // namespace
}  // namespace scent::core
