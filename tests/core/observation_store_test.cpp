// ObservationStore's incremental indexing: add() maintains the per-MAC
// index and uniqueness sets as it goes, so interleaved add/query sequences
// (every funnel stage alternates them) see consistent answers without a
// rebuild, and append() replays another store's insertion order so a merged
// store is indistinguishable from one built serially.
#include "core/observation.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netbase/eui64.h"
#include "netbase/ipv6_address.h"
#include "netbase/mac_address.h"
#include "sim/rng.h"

namespace scent::core {
namespace {

/// A pseudorandom observation stream with deliberate duplicates: a few
/// dozen distinct devices, some EUI-64, some privacy-addressed.
std::vector<Observation> make_stream(std::uint64_t seed, std::size_t count) {
  sim::Rng rng{seed};
  std::vector<Observation> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t network =
        0x20010db800000000ULL | (rng.below(24) << 8);
    net::Ipv6Address response;
    if (rng.chance(0.7)) {
      // EUI-64 IID from a small MAC population (forces repeats).
      const net::MacAddress mac{0x3810d5000000ULL | rng.below(16)};
      response = net::Ipv6Address{network, net::mac_to_eui64(mac)};
    } else {
      response = net::Ipv6Address{network, rng.next() | 0x0400000000000000ULL};
    }
    out.push_back(Observation{
        net::Ipv6Address{network, i}, response,
        wire::Icmpv6Type::kEchoReply, 0,
        static_cast<sim::TimePoint>(i) * 100});
  }
  return out;
}

/// Ground truth computed from scratch over a prefix of the stream.
struct Expected {
  std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> responses;
  std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> eui_responses;
  std::unordered_map<net::MacAddress, std::vector<std::size_t>,
                     net::MacAddressHash>
      by_mac;
};

Expected recompute(const std::vector<Observation>& stream, std::size_t n) {
  Expected e;
  for (std::size_t i = 0; i < n; ++i) {
    e.responses.insert(stream[i].response);
    if (const auto mac = net::embedded_mac(stream[i].response)) {
      e.eui_responses.insert(stream[i].response);
      e.by_mac[*mac].push_back(i);
    }
  }
  return e;
}

TEST(ObservationStore, InterleavedAddAndQueryMatchesFromScratchRebuild) {
  const auto stream = make_stream(0x0B5, 600);
  ObservationStore store;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    store.add(stream[i]);
    // Query after *every* add — the pattern that used to trigger a full
    // per-query rebuild. Check against ground truth at coarse intervals
    // (every add for the first 50, then every 97th) to keep the test fast.
    if (i < 50 || i % 97 == 0 || i + 1 == stream.size()) {
      const Expected e = recompute(stream, i + 1);
      ASSERT_EQ(store.size(), i + 1);
      ASSERT_EQ(store.unique_responses(), e.responses.size()) << "at " << i;
      ASSERT_EQ(store.unique_eui64_responses(), e.eui_responses.size());
      ASSERT_EQ(store.unique_eui64_iids(), e.by_mac.size());
      ASSERT_EQ(store.by_mac().size(), e.by_mac.size());
      for (const auto& [mac, indices] : e.by_mac) {
        const auto it = store.by_mac().find(mac);
        ASSERT_NE(it, store.by_mac().end());
        ASSERT_EQ(store.indices_of(mac), indices) << "at " << i;
      }
    }
  }
}

TEST(ObservationStore, AppendEqualsSeriallyConcatenatedAdds) {
  const auto stream = make_stream(0xA99, 400);

  // Serial reference: one store fed the whole stream.
  ObservationStore serial;
  for (const auto& obs : stream) serial.add(obs);

  // Sharded: three stores fed disjoint slices, merged in order.
  ObservationStore a;
  ObservationStore b;
  ObservationStore c;
  for (std::size_t i = 0; i < 150; ++i) a.add(stream[i]);
  for (std::size_t i = 150; i < 260; ++i) b.add(stream[i]);
  for (std::size_t i = 260; i < stream.size(); ++i) c.add(stream[i]);

  ObservationStore merged;
  merged.append(a);
  merged.append(b);
  merged.append(c);

  ASSERT_EQ(merged.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(merged.all()[i].target, serial.all()[i].target);
    EXPECT_EQ(merged.all()[i].response, serial.all()[i].response);
    EXPECT_EQ(merged.all()[i].time, serial.all()[i].time);
  }
  EXPECT_EQ(merged.unique_responses(), serial.unique_responses());
  EXPECT_EQ(merged.unique_eui64_responses(), serial.unique_eui64_responses());
  EXPECT_EQ(merged.unique_eui64_iids(), serial.unique_eui64_iids());

  // by_mac indices must point into the *merged* store, in insertion order.
  ASSERT_EQ(merged.by_mac().size(), serial.by_mac().size());
  for (const auto& [mac, indices] : serial.by_mac()) {
    EXPECT_EQ(merged.indices_of(mac), serial.indices_of(mac));
  }

  // networks_of agrees too (first-seen order of distinct /64s).
  for (const auto& [mac, indices] : serial.by_mac()) {
    EXPECT_EQ(merged.networks_of(mac), serial.networks_of(mac));
  }
}

TEST(ObservationStore, ColumnsViewAndRowsAgree) {
  const auto stream = make_stream(0x1D, 200);
  ObservationStore store;
  for (const auto& obs : stream) store.add(obs);

  ASSERT_EQ(store.size(), stream.size());
  const auto view = store.all();
  ASSERT_EQ(view.size(), stream.size());
  std::size_t seen = 0;
  for (const auto& obs : view) {
    EXPECT_EQ(obs.target, stream[seen].target);
    ++seen;
  }
  EXPECT_EQ(seen, stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    // Column accessors, row reassembly, and view indexing all agree.
    EXPECT_EQ(store.target(i), stream[i].target);
    EXPECT_EQ(store.response(i), stream[i].response);
    EXPECT_EQ(store.type(i), stream[i].type);
    EXPECT_EQ(store.code(i), stream[i].code);
    EXPECT_EQ(store.time(i), stream[i].time);
    EXPECT_EQ(view[i].response, stream[i].response);
    EXPECT_EQ(store.at(i).time, stream[i].time);
  }

  // A sub-view addresses absolute rows [first, last).
  const auto slice = store.view(50, 120);
  ASSERT_EQ(slice.size(), 70u);
  for (std::size_t i = 0; i < slice.size(); ++i) {
    EXPECT_EQ(slice.response(i), stream[50 + i].response);
    EXPECT_EQ(slice[i].target, stream[50 + i].target);
  }

  // The corpus accounts for its heap: at minimum the four columns.
  EXPECT_GE(store.memory_footprint(),
            store.size() * (2 * sizeof(net::Ipv6Address) +
                            sizeof(std::uint16_t) + sizeof(sim::TimePoint)));
}

TEST(ObservationStore, RepeatedResponsesClassifiedOncePerAddress) {
  // The same EUI-64 response observed many times: by-MAC indices keep one
  // entry per observation while the uniqueness counters stay at one.
  const net::MacAddress mac{0x3810d5000042ULL};
  const net::Ipv6Address eui_response{0x20010db800000000ULL,
                                      net::mac_to_eui64(mac)};
  const net::Ipv6Address privacy_response{0x20010db800000000ULL,
                                          0x0400cafe12345678ULL};
  ObservationStore store;
  for (std::size_t i = 0; i < 10; ++i) {
    store.add(Observation{net::Ipv6Address{0x20010db8ULL, i}, eui_response,
                          wire::Icmpv6Type::kEchoReply, 0,
                          static_cast<sim::TimePoint>(i)});
    store.add(Observation{net::Ipv6Address{0x20010db8ULL, 100 + i},
                          privacy_response, wire::Icmpv6Type::kEchoReply, 0,
                          static_cast<sim::TimePoint>(i)});
  }
  EXPECT_EQ(store.unique_responses(), 2u);
  EXPECT_EQ(store.unique_eui64_responses(), 1u);
  EXPECT_EQ(store.unique_eui64_iids(), 1u);
  const auto indices = store.indices_of(mac);
  ASSERT_EQ(indices.size(), 10u);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(indices[i], 2 * i);  // every even row is the EUI response
  }
}

TEST(ObservationStore, AppendEmptyAndOntoEmpty) {
  const auto stream = make_stream(0x3E, 10);
  ObservationStore filled;
  for (const auto& obs : stream) filled.add(obs);

  ObservationStore empty;
  ObservationStore merged;
  merged.append(empty);
  EXPECT_TRUE(merged.empty());
  merged.append(filled);
  EXPECT_EQ(merged.size(), filled.size());
  merged.append(empty);
  EXPECT_EQ(merged.size(), filled.size());
}

}  // namespace
}  // namespace scent::core
