// Tests for the §5 campaign driver: scheduling, granularity switching,
// determinism, and corpus properties.
#include "core/campaign.h"

#include <gtest/gtest.h>

#include <set>

#include "core/inference.h"
#include "probe/prober.h"
#include "sim/scenario.h"

namespace scent::core {
namespace {

using namespace scent;

struct CampaignFixture {
  sim::PaperWorld world;
  sim::VirtualClock clock{sim::hours(10)};
  probe::Prober prober;
  std::vector<net::Prefix> targets;

  CampaignFixture()
      : world(sim::make_tiny_world(0xCA0, 48)),
        prober(world.internet, clock,
               {.packets_per_second = 1000000, .wire_mode = false}) {
    // Target the rotating provider's 4 /48s directly (funnel tested
    // elsewhere).
    const auto& pool = world.internet.provider(world.versatel).pools()[0];
    for (std::uint64_t i = 0; i < 4; ++i) {
      targets.push_back(net::Prefix{
          pool.config().prefix.subnet(48, net::Uint128{i}).base(), 48});
    }
  }
};

TEST(Campaign, RunsRequestedDaysAtNoon) {
  CampaignFixture f;
  CampaignOptions options;
  options.days = 5;
  const auto result =
      run_campaign(f.world.internet, f.clock, f.prober, f.targets, options);
  ASSERT_EQ(result.daily.size(), 5u);
  for (std::size_t d = 0; d < 5; ++d) {
    EXPECT_EQ(result.daily[d].day, static_cast<std::int64_t>(d));
  }
  EXPECT_GT(result.responses, 0u);
  EXPECT_EQ(result.probes_sent,
            result.daily[0].probes + result.daily[1].probes +
                result.daily[2].probes + result.daily[3].probes +
                result.daily[4].probes);
}

TEST(Campaign, Day0InfersAllocationAndLaterDaysGoCheaper) {
  CampaignFixture f;
  CampaignOptions options;
  options.days = 3;
  const auto result =
      run_campaign(f.world.internet, f.clock, f.prober, f.targets, options);
  // Day 0: per-/64 sweep of 4 /48s = 4 * 65536 probes.
  EXPECT_EQ(result.daily[0].probes, 4u * 65536u);
  // Allocation inferred as /56 for the rotator's AS.
  ASSERT_TRUE(result.allocation_length_by_as.contains(65001));
  EXPECT_EQ(result.allocation_length_by_as.at(65001), 56u);
  // Days 1+: one probe per inferred /56 = 4 * 256.
  EXPECT_EQ(result.daily[1].probes, 4u * 256u);
  EXPECT_EQ(result.daily[2].probes, 4u * 256u);
}

TEST(Campaign, FullGranularityModeKeepsSweepingPer64) {
  CampaignFixture f;
  CampaignOptions options;
  options.days = 2;
  options.allocation_granularity_after_day0 = false;
  const auto result =
      run_campaign(f.world.internet, f.clock, f.prober, f.targets, options);
  EXPECT_EQ(result.daily[0].probes, result.daily[1].probes);
}

TEST(Campaign, ObservesEveryActiveDeviceDaily) {
  CampaignFixture f;
  CampaignOptions options;
  options.days = 4;
  const auto result =
      run_campaign(f.world.internet, f.clock, f.prober, f.targets, options);
  // 48 devices, all EUI-64 and responsive in the tiny world.
  for (const auto& day : result.daily) {
    EXPECT_EQ(day.unique_eui64_iids, 48u);
  }
  EXPECT_EQ(result.observations.unique_eui64_iids(), 48u);
}

TEST(Campaign, CorpusShowsDailyPrefixMovement) {
  CampaignFixture f;
  CampaignOptions options;
  options.days = 5;
  const auto result =
      run_campaign(f.world.internet, f.clock, f.prober, f.targets, options);
  // Every device should have been seen in ~5 distinct /64s (daily stride).
  std::size_t total_networks = 0;
  for (const auto& [mac, indices] : result.observations.by_mac()) {
    const auto networks = result.observations.networks_of(mac);
    EXPECT_GE(networks.size(), 4u) << mac.to_string();
    total_networks += networks.size();
  }
  EXPECT_GE(total_networks, 48u * 4u);
}

TEST(Campaign, RotationPoolInferenceConvergesWithDays) {
  CampaignFixture f;
  CampaignOptions options;
  options.days = 7;
  const auto result =
      run_campaign(f.world.internet, f.clock, f.prober, f.targets, options);
  RotationPoolInference pools;
  pools.observe_all(result.observations);
  // Stride 236 over 1024 slots: 6 rotations span >= the whole /46.
  EXPECT_LE(pools.median_length().value_or(64), 47u);
}

TEST(Campaign, EmptyTargetsYieldEmptyResult) {
  CampaignFixture f;
  CampaignOptions options;
  options.days = 2;
  const auto result =
      run_campaign(f.world.internet, f.clock, f.prober, {}, options);
  EXPECT_EQ(result.probes_sent, 0u);
  EXPECT_TRUE(result.observations.empty());
  EXPECT_TRUE(result.allocation_length_by_as.empty());
}

TEST(Campaign, SameSeedSameTargetsEveryDay) {
  // The paper's temporal-consistency requirement: identical targets and
  // order daily. Two campaigns with the same options over fresh worlds
  // must send identical probe streams.
  CampaignFixture f1;
  CampaignFixture f2;
  CampaignOptions options;
  options.days = 2;
  const auto r1 =
      run_campaign(f1.world.internet, f1.clock, f1.prober, f1.targets,
                   options);
  const auto r2 =
      run_campaign(f2.world.internet, f2.clock, f2.prober, f2.targets,
                   options);
  ASSERT_EQ(r1.observations.size(), r2.observations.size());
  for (std::size_t i = 0; i < r1.observations.size(); ++i) {
    EXPECT_EQ(r1.observations.all()[i].target,
              r2.observations.all()[i].target);
    EXPECT_EQ(r1.observations.all()[i].response,
              r2.observations.all()[i].response);
  }
}

}  // namespace
}  // namespace scent::core
