// Failure-injection tests: the pipeline under loss, rate limiting, silent
// CPE, privacy-mode fleets, and service churn. The measurement system must
// degrade the way the paper describes — missed observations, never
// corrupted inferences.
#include <gtest/gtest.h>

#include <set>

#include "core/inference.h"
#include "core/rotation_detector.h"
#include "core/tracker.h"
#include "probe/prober.h"
#include "probe/target_generator.h"
#include "sim/scenario.h"

namespace scent::core {
namespace {

using namespace scent;

sim::PaperWorld lossy_world(double loss, double silent_fraction,
                            double eui64_fraction, sim::RateLimit limit,
                            std::uint64_t seed = 0xFA11) {
  sim::WorldBuilder builder{seed};
  sim::PaperWorld world;
  sim::ProviderSpec spec;
  spec.asn = 65001;
  spec.name = "Flaky";
  spec.country = "DE";
  spec.advertisement = *net::Prefix::parse("2001:db8::/32");
  spec.vendors = {{net::Oui{0x3810d5}, 1.0}};
  spec.eui64_fraction = eui64_fraction;
  spec.low_byte_fraction = 0.0;
  spec.silent_fraction = silent_fraction;
  spec.loss_rate = loss;
  spec.rate_limit = limit;
  sim::PoolSpec pool;
  pool.pool_length = 46;
  pool.allocation_length = 56;
  pool.rotation.kind = sim::RotationPolicy::Kind::kStride;
  pool.rotation.stride = 236;
  pool.device_count = 256;
  spec.pools.push_back(pool);
  world.versatel = builder.add_provider(spec);
  world.internet = builder.take();
  return world;
}

TEST(FailureInjection, LossReducesResponsesProportionally) {
  sim::PaperWorld world = lossy_world(0.3, 0.0, 1.0, {10000, 10000});
  sim::VirtualClock clock{sim::hours(12)};
  probe::Prober prober{world.internet, clock,
                       {.packets_per_second = 100000, .wire_mode = false}};
  const auto& pool = world.internet.provider(world.versatel).pools()[0];
  const auto results =
      prober.sweep_subnets(pool.config().prefix, 56, 0x105e);
  // 256 of 1024 slots occupied; ~30% of their replies lost.
  EXPECT_GT(results.size(), 256 * 0.5);
  EXPECT_LT(results.size(), 256 * 0.9);
}

TEST(FailureInjection, AllocationInferenceSurvivesLoss) {
  sim::PaperWorld world = lossy_world(0.25, 0.0, 1.0, {100000, 100000});
  sim::VirtualClock clock{sim::hours(12)};
  probe::Prober prober{world.internet, clock,
                       {.packets_per_second = 1000000, .wire_mode = false}};
  const auto& pool = world.internet.provider(world.versatel).pools()[0];
  AllocationSizeInference inference;
  // Per-/64 sweep of the first /48 of the pool.
  const auto results = prober.sweep_subnets(
      net::Prefix{pool.config().prefix.base(), 48}, 64, 0xA110);
  for (const auto& r : results) {
    inference.observe(r.target, r.response_source);
  }
  // Median allocation inference is robust: each device still answers for
  // ~192 of its 256 inner /64s.
  EXPECT_EQ(inference.median_length().value_or(0), 56u);
}

TEST(FailureInjection, TrackerRetriesThroughLossAcrossDays) {
  sim::PaperWorld world = lossy_world(0.5, 0.0, 1.0, {100000, 100000});
  sim::VirtualClock clock{sim::hours(12)};
  probe::Prober prober{world.internet, clock,
                       {.packets_per_second = 1000000, .wire_mode = false}};
  const auto& pool = world.internet.provider(world.versatel).pools()[0];

  TrackerConfig config;
  config.target_mac = pool.devices()[5].mac;
  config.pool = pool.config().prefix;
  config.allocation_length = 56;
  config.seed = 0x7AC;
  Tracker tracker{prober, config};

  // With 50% loss a single day's sweep fails half the time, but a week of
  // attempts recovers the device repeatedly.
  int found_days = 0;
  for (std::int64_t day = 0; day < 8; ++day) {
    clock.advance_to(sim::days(day) + sim::hours(12));
    if (tracker.locate(day).found) ++found_days;
  }
  EXPECT_GE(found_days, 2);
  EXPECT_LT(found_days, 8);  // loss must actually bite at 50%
}

TEST(FailureInjection, SilentFleetIsInvisibleButDoesNotCorrupt) {
  sim::PaperWorld world = lossy_world(0.0, 1.0, 1.0, {10000, 10000});
  sim::VirtualClock clock{sim::hours(12)};
  probe::Prober prober{world.internet, clock,
                       {.packets_per_second = 100000, .wire_mode = false}};
  const auto& pool = world.internet.provider(world.versatel).pools()[0];
  const auto results =
      prober.sweep_subnets(pool.config().prefix, 56, 0x51E7);
  EXPECT_TRUE(results.empty());
}

TEST(FailureInjection, PrivacyFleetYieldsNoTrackableIids) {
  sim::PaperWorld world = lossy_world(0.0, 0.0, 0.0, {10000, 10000});
  sim::VirtualClock clock{sim::hours(12)};
  probe::Prober prober{world.internet, clock,
                       {.packets_per_second = 100000, .wire_mode = false}};
  const auto& pool = world.internet.provider(world.versatel).pools()[0];

  // Devices respond (privacy extensions do not silence the CPE)...
  const auto day0 =
      prober.sweep_subnets(pool.config().prefix, 56, 0x9417);
  EXPECT_EQ(day0.size(), 256u);
  // ...but nothing carries an EUI-64 IID, so Algorithm 2 sees nothing.
  RotationPoolInference pools;
  for (const auto& r : day0) pools.observe(r.response_source);
  EXPECT_EQ(pools.device_count(), 0u);

  // And the same fleet probed after a rotation is unlinkable: the IIDs
  // changed along with the prefixes (RFC 4941 working as intended).
  clock.advance_to(sim::days(1) + sim::hours(12));
  const auto day1 =
      prober.sweep_subnets(pool.config().prefix, 56, 0x9417);
  std::set<std::uint64_t> iids0;
  std::set<std::uint64_t> iids1;
  for (const auto& r : day0) iids0.insert(r.response_source.iid());
  for (const auto& r : day1) iids1.insert(r.response_source.iid());
  for (const std::uint64_t iid : iids1) {
    EXPECT_FALSE(iids0.contains(iid));
  }
}

TEST(FailureInjection, RateLimitingThrottlesBurstsPerDevice) {
  sim::PaperWorld world = lossy_world(0.0, 0.0, 1.0, {2.0, 2.0});
  sim::VirtualClock clock{sim::hours(12)};
  // Very fast prober: probes arrive within the same virtual second.
  probe::Prober prober{world.internet, clock,
                       {.packets_per_second = 10000000, .wire_mode = false}};
  const auto& provider = world.internet.provider(world.versatel);
  const net::Prefix alloc = provider.allocation({0, 0}, clock.now());

  int responses = 0;
  for (int i = 0; i < 20; ++i) {
    const auto target = probe::target_in(alloc, 100 + i);
    if (prober.probe_one(target).responded) ++responses;
  }
  EXPECT_LE(responses, 3);  // the burst allowance, maybe +1 refill
  EXPECT_GE(responses, 2);

  // After an idle second the bucket refills.
  clock.advance(sim::kSecond * 2);
  EXPECT_TRUE(prober.probe_one(probe::target_in(alloc, 999)).responded);
}

TEST(FailureInjection, ChurnCreatesFalseRotatorsWithoutEuiMovement) {
  // A static provider with churn gets flagged by the two-snapshot detector
  // (the paper's §4.3/§5.3 false-positive mechanism), yet Algorithm 2
  // still reports /64 pools — exactly the Figure-7 signature.
  sim::WorldBuilder builder{0xC04B};
  sim::ProviderSpec spec;
  spec.asn = 65009;
  spec.name = "StaticChurny";
  spec.country = "JP";
  spec.advertisement = *net::Prefix::parse("2001:db8::/32");
  spec.vendors = {{net::Oui{0x344b50}, 1.0}};
  spec.eui64_fraction = 1.0;
  spec.low_byte_fraction = 0.0;
  spec.silent_fraction = 0.0;
  spec.churn_fraction = 0.5;
  sim::PoolSpec pool;
  pool.pool_length = 48;
  pool.allocation_length = 56;
  pool.device_count = 200;
  pool.placement = sim::Placement::kScattered;
  spec.pools.push_back(pool);
  const std::size_t index = builder.add_provider(spec);
  sim::Internet internet = builder.take();

  sim::VirtualClock clock{sim::hours(12)};
  probe::Prober prober{internet, clock,
                       {.packets_per_second = 1000000, .wire_mode = false}};
  const net::Prefix p48 =
      internet.provider(index).pools()[0].config().prefix;

  Snapshot s1;
  Snapshot s2;
  RotationPoolInference pools;
  for (int day = 0; day < 2; ++day) {
    clock.advance_to(sim::days(day) + sim::hours(12));
    probe::SubnetTargets targets{p48, 64, 0xC04B};
    net::Ipv6Address target;
    while (targets.next(target)) {
      const auto r = prober.probe_one(target);
      if (!r.responded) continue;
      (day == 0 ? s1 : s2).record(r.target, r.response_source);
      pools.observe(r.response_source);
    }
  }

  const auto verdicts = detect_rotation(s1, s2);
  ASSERT_FALSE(verdicts.empty());
  EXPECT_TRUE(verdicts[0].rotating);  // churn flagged it...
  EXPECT_EQ(pools.median_length().value_or(0), 64u);  // ...but nothing moved
}

}  // namespace
}  // namespace scent::core
