// Integration tests: the full §4 discovery funnel and the §5 campaign run
// end-to-end against a small simulated Internet, and their outputs are
// validated against the simulator's ground truth.
#include <gtest/gtest.h>

#include <set>

#include "core/bootstrap.h"
#include "core/campaign.h"
#include "core/homogeneity.h"
#include "core/inference.h"
#include "probe/prober.h"
#include "sim/scenario.h"

namespace scent::core {
namespace {

/// A compact world for funnel testing: small /40 advertisements keep the
/// per-/48 expansion cheap (256 /48s per AS).
sim::PaperWorld funnel_world(std::uint64_t seed) {
  sim::WorldBuilder builder{seed};
  sim::PaperWorld world;

  {
    sim::ProviderSpec spec;
    spec.asn = 65001;
    spec.name = "Rotator";
    spec.country = "DE";
    spec.advertisement = *net::Prefix::parse("2001:db8::/40");
    spec.vendors = {{net::Oui{0x3810d5}, 1.0}};
    spec.eui64_fraction = 1.0;
    spec.low_byte_fraction = 0.0;
    spec.silent_fraction = 0.0;
    sim::PoolSpec pool;
    pool.pool_length = 46;
    pool.allocation_length = 56;
    pool.rotation.kind = sim::RotationPolicy::Kind::kStride;
    pool.rotation.stride = 236;
    pool.rotation.window_length = sim::hours(6);
    pool.device_count = 760;
    spec.pools.push_back(pool);
    world.versatel = builder.add_provider(spec);
  }
  {
    sim::ProviderSpec spec;
    spec.asn = 65002;
    spec.name = "Static";
    spec.country = "VN";
    spec.advertisement = *net::Prefix::parse("2406:da00::/40");
    spec.vendors = {{net::Oui{0x344b50}, 1.0}};
    spec.eui64_fraction = 1.0;
    spec.low_byte_fraction = 0.0;
    spec.silent_fraction = 0.0;
    sim::PoolSpec pool;
    pool.pool_length = 48;
    pool.allocation_length = 56;
    pool.device_count = 190;
    pool.placement = sim::Placement::kScattered;
    spec.pools.push_back(pool);
    world.viettel = builder.add_provider(spec);
  }

  world.internet = builder.take();
  return world;
}

class FunnelTest : public ::testing::Test {
 protected:
  FunnelTest() : world_(funnel_world(0xF00D)), clock_(sim::hours(10)) {}

  sim::PaperWorld world_;
  sim::VirtualClock clock_;
};

TEST_F(FunnelTest, FullFunnelFindsOnlyTheRotatingPool) {
  probe::ProberOptions opts;
  opts.wire_mode = false;
  opts.packets_per_second = 1000000;  // keep virtual probing inside one day
  probe::Prober prober{world_.internet, clock_, opts};

  BootstrapOptions options;
  options.min_advert_length = 32;
  options.probes_per_48 = 6;
  const BootstrapResult result =
      run_bootstrap(world_.internet, clock_, prober, options);

  // Stage 0/1: /48s of both providers were found.
  EXPECT_FALSE(result.seed_48s.empty());
  EXPECT_EQ(result.seed_32s.size(), 2u);
  EXPECT_FALSE(result.expanded_48s.empty());

  // The rotating /46 spans 4 /48s; all must be detected as rotating.
  const net::Prefix rot_pool = world_.internet.provider(world_.versatel)
                                   .pools()[0]
                                   .config()
                                   .prefix;
  std::size_t rotating_in_pool = 0;
  for (const auto& p48 : result.rotating_48s) {
    EXPECT_TRUE(rot_pool.contains(p48))
        << p48.to_string() << " flagged rotating outside the rotating pool";
    ++rotating_in_pool;
  }
  EXPECT_GE(rotating_in_pool, 3u);

  // The static provider's /48 must not be flagged.
  const net::Prefix static_pool = world_.internet.provider(world_.viettel)
                                      .pools()[0]
                                      .config()
                                      .prefix;
  for (const auto& p48 : result.rotating_48s) {
    EXPECT_FALSE(static_pool.contains(p48));
  }

  // Funnel accounting is internally consistent.
  EXPECT_GT(result.probes_sent, 0u);
  EXPECT_GE(result.total_addresses, result.eui64_addresses);
  EXPECT_GE(result.eui64_addresses, result.unique_iids);
  EXPECT_GT(result.unique_iids, 0u);

  // Rotation makes EUI-64 addresses outnumber distinct IIDs.
  EXPECT_GT(result.eui64_addresses, result.unique_iids);
}

TEST_F(FunnelTest, Table1GroupingAttributesRotatorsToAs) {
  probe::ProberOptions opts;
  opts.wire_mode = false;
  opts.packets_per_second = 1000000;
  probe::Prober prober{world_.internet, clock_, opts};
  BootstrapOptions boot;
  boot.probes_per_48 = 6;
  const BootstrapResult result =
      run_bootstrap(world_.internet, clock_, prober, boot);

  const auto by_asn = rotators_by_asn(result.rotating_48s,
                                      world_.internet.bgp());
  ASSERT_FALSE(by_asn.empty());
  EXPECT_EQ(by_asn[0].key, "65001");
  const auto by_country =
      rotators_by_country(result.rotating_48s, world_.internet.bgp());
  ASSERT_FALSE(by_country.empty());
  EXPECT_EQ(by_country[0].key, "DE");
}

TEST_F(FunnelTest, DensityStageSeparatesClasses) {
  probe::ProberOptions opts;
  opts.wire_mode = false;
  opts.packets_per_second = 1000000;
  probe::Prober prober{world_.internet, clock_, opts};
  BootstrapOptions boot;
  boot.probes_per_48 = 6;
  const BootstrapResult result =
      run_bootstrap(world_.internet, clock_, prober, boot);

  // Both pools are dense (>2 devices per /48): all expanded /48s inside
  // pools are high density.
  EXPECT_FALSE(result.high_density_48s.empty());
  for (const auto& d : result.densities) {
    if (d.klass == DensityClass::kHigh) {
      EXPECT_GT(d.unique_eui64, 2u);
    }
  }
}

TEST_F(FunnelTest, CampaignObservesRotationDynamics) {
  probe::ProberOptions opts;
  opts.wire_mode = false;
  opts.packets_per_second = 1000000;
  probe::Prober prober{world_.internet, clock_, opts};
  BootstrapOptions boot;
  boot.probes_per_48 = 6;
  const BootstrapResult funnel =
      run_bootstrap(world_.internet, clock_, prober, boot);
  ASSERT_FALSE(funnel.rotating_48s.empty());

  CampaignOptions options;
  options.days = 6;
  const CampaignResult campaign = run_campaign(
      world_.internet, clock_, prober, funnel.rotating_48s, options);

  EXPECT_EQ(campaign.daily.size(), 6u);
  EXPECT_GT(campaign.responses, 0u);

  // Day 0 inferred the rotator's /56 allocation size.
  ASSERT_TRUE(campaign.allocation_length_by_as.contains(65001));
  EXPECT_EQ(campaign.allocation_length_by_as.at(65001), 56u);

  // Algorithm 2 on the corpus: the rotating devices' pool is /46.
  RotationPoolInference pools;
  pools.observe_all(campaign.observations);
  const auto median = pools.median_length();
  ASSERT_TRUE(median.has_value());
  EXPECT_LE(*median, 48u);   // clearly rotating over a wide range
  EXPECT_GE(*median, 46u);   // ... bounded by the /46 pool

  // Devices appear in multiple /64s across days (Figure 8's signal).
  std::size_t multi_prefix_devices = 0;
  for (const auto& [mac, indices] : campaign.observations.by_mac()) {
    if (campaign.observations.networks_of(mac).size() > 1) {
      ++multi_prefix_devices;
    }
  }
  EXPECT_GT(multi_prefix_devices,
            campaign.observations.unique_eui64_iids() / 2);
}

TEST_F(FunnelTest, WireModeProducesSameFunnelAsFastMode) {
  // The wire path must not change any inference — only cost.
  sim::PaperWorld world2 = funnel_world(0xF00D);
  sim::VirtualClock clock2{sim::hours(10)};

  probe::ProberOptions fast;
  fast.wire_mode = false;
  fast.packets_per_second = 1000000;
  BootstrapOptions boot;
  boot.probes_per_48 = 2;
  probe::Prober fast_prober{world_.internet, clock_, fast};
  const BootstrapResult a =
      run_bootstrap(world_.internet, clock_, fast_prober, boot);

  probe::ProberOptions wire;
  wire.wire_mode = true;
  wire.packets_per_second = 1000000;
  probe::Prober wire_prober{world2.internet, clock2, wire};
  const BootstrapResult b =
      run_bootstrap(world2.internet, clock2, wire_prober, boot);

  EXPECT_EQ(a.seed_48s, b.seed_48s);
  EXPECT_EQ(a.expanded_48s, b.expanded_48s);
  EXPECT_EQ(a.high_density_48s, b.high_density_48s);
  EXPECT_EQ(a.rotating_48s, b.rotating_48s);
  EXPECT_EQ(a.unique_iids, b.unique_iids);
}

}  // namespace
}  // namespace scent::core
