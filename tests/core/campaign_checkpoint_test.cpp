// Tests for checkpoint/resume campaigns (§5f): a run killed after day K
// and resumed from its checkpoint directory must produce a corpus, result
// and on-disk snapshot chain bit-identical to an uninterrupted run — at
// any thread count — and a corrupt chain must be discarded, not trusted.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "corpus/checkpoint.h"
#include "probe/prober.h"
#include "sim/scenario.h"

namespace scent::core {
namespace {

using namespace scent;

struct CampaignFixture {
  sim::PaperWorld world;
  sim::VirtualClock clock{sim::hours(10)};
  probe::Prober prober;
  std::vector<net::Prefix> targets;

  CampaignFixture()
      : world(sim::make_tiny_world(0xCA0, 48)),
        prober(world.internet, clock,
               {.packets_per_second = 1000000, .wire_mode = false}) {
    const auto& pool = world.internet.provider(world.versatel).pools()[0];
    for (std::uint64_t i = 0; i < 4; ++i) {
      targets.push_back(net::Prefix{
          pool.config().prefix.subnet(48, net::Uint128{i}).base(), 48});
    }
  }
};

struct TempDir {
  std::string path;
  explicit TempDir(const char* tag) {
    path = std::string{::testing::TempDir()} + "/scent_resume_" + tag + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

std::vector<unsigned char> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<unsigned char> bytes;
  if (f == nullptr) return bytes;
  unsigned char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

/// Full-result equality: every observation column, the daily funnel, the
/// totals, the frozen allocation inference, and the rebuilt indexes.
void expect_same_result(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.observations.size(), b.observations.size());
  for (std::size_t i = 0; i < a.observations.size(); ++i) {
    ASSERT_EQ(a.observations.target(i), b.observations.target(i)) << i;
    ASSERT_EQ(a.observations.response(i), b.observations.response(i)) << i;
    ASSERT_EQ(a.observations.type_code(i), b.observations.type_code(i)) << i;
    ASSERT_EQ(a.observations.time(i), b.observations.time(i)) << i;
  }
  EXPECT_EQ(a.observations.unique_responses(),
            b.observations.unique_responses());
  EXPECT_EQ(a.observations.unique_eui64_iids(),
            b.observations.unique_eui64_iids());
  EXPECT_EQ(a.observations.by_mac().size(), b.observations.by_mac().size());
  ASSERT_EQ(a.daily.size(), b.daily.size());
  for (std::size_t d = 0; d < a.daily.size(); ++d) {
    EXPECT_EQ(a.daily[d].day, b.daily[d].day);
    EXPECT_EQ(a.daily[d].probes, b.daily[d].probes);
    EXPECT_EQ(a.daily[d].responses, b.daily[d].responses);
    EXPECT_EQ(a.daily[d].unique_eui64_iids, b.daily[d].unique_eui64_iids);
  }
  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.responses, b.responses);
  EXPECT_EQ(a.allocation_length_by_as, b.allocation_length_by_as);
}

/// The on-disk chains must match byte for byte, snapshots and manifest.
void expect_same_chain(const std::string& dir_a, const std::string& dir_b,
                       unsigned days) {
  for (unsigned d = 0; d < days; ++d) {
    const std::string name = corpus::snapshot_file_name(d);
    EXPECT_EQ(slurp(dir_a + "/" + name), slurp(dir_b + "/" + name)) << name;
  }
  EXPECT_EQ(slurp(corpus::manifest_path(dir_a)),
            slurp(corpus::manifest_path(dir_b)));
}

CampaignResult run(CampaignFixture& f, unsigned days, const std::string& dir,
                   unsigned threads = 1) {
  CampaignOptions options;
  options.days = days;
  options.threads = threads;
  options.checkpoint_dir = dir;
  return run_campaign(f.world.internet, f.clock, f.prober, f.targets,
                      options);
}

TEST(CampaignCheckpoint, ResumeMatchesUninterrupted) {
  TempDir whole{"whole"};
  TempDir split{"split"};

  CampaignFixture uninterrupted;
  const auto expected = run(uninterrupted, 5, whole.path);
  ASSERT_TRUE(expected.checkpoint_ok);
  EXPECT_EQ(expected.resumed_days, 0u);

  // "Kill" after day 2 by running a shorter horizon, then resume with a
  // fresh process-equivalent: new world, new clock, new prober.
  CampaignFixture before_kill;
  const auto partial = run(before_kill, 2, split.path);
  ASSERT_TRUE(partial.checkpoint_ok);

  CampaignFixture resumed;
  const auto result = run(resumed, 5, split.path);
  ASSERT_TRUE(result.checkpoint_ok);
  EXPECT_EQ(result.resumed_days, 2u);
  expect_same_result(expected, result);
  expect_same_chain(whole.path, split.path, 5);
}

TEST(CampaignCheckpoint, ResumeIsThreadCountInvariant) {
  // §5d determinism across process boundaries AND shard counts: a 4-thread
  // resume of a 4-thread partial run must equal a 1-thread uninterrupted
  // campaign, chain included.
  TempDir serial{"serial"};
  TempDir threaded{"threaded"};

  CampaignFixture uninterrupted;
  const auto expected = run(uninterrupted, 4, serial.path, /*threads=*/1);

  CampaignFixture before_kill;
  (void)run(before_kill, 2, threaded.path, /*threads=*/4);
  CampaignFixture resumed;
  const auto result = run(resumed, 4, threaded.path, /*threads=*/4);
  EXPECT_EQ(result.resumed_days, 2u);
  expect_same_result(expected, result);
  expect_same_chain(serial.path, threaded.path, 4);
}

TEST(CampaignCheckpoint, CheckpointingDoesNotPerturbTheResult) {
  TempDir dir{"inert"};
  CampaignFixture plain;
  CampaignOptions options;
  options.days = 3;
  const auto expected = run_campaign(plain.world.internet, plain.clock,
                                     plain.prober, plain.targets, options);
  CampaignFixture checkpointed;
  const auto result = run(checkpointed, 3, dir.path);
  expect_same_result(expected, result);
}

TEST(CampaignCheckpoint, ShorterHorizonReplaysPrefixWithoutProbing) {
  TempDir dir{"prefix"};
  CampaignFixture longer;
  (void)run(longer, 4, dir.path);

  CampaignFixture plain;
  CampaignOptions options;
  options.days = 2;
  const auto expected = run_campaign(plain.world.internet, plain.clock,
                                     plain.prober, plain.targets, options);

  CampaignFixture resumed;
  const auto result = run(resumed, 2, dir.path);
  EXPECT_EQ(result.resumed_days, 2u);
  // Everything came from the chain: the prober never went on the wire.
  EXPECT_EQ(resumed.prober.counters().sent, 0u);
  expect_same_result(expected, result);
}

TEST(CampaignCheckpoint, CorruptManifestStartsFresh) {
  TempDir dir{"badmanifest"};
  {
    std::FILE* f =
        std::fopen(corpus::manifest_path(dir.path).c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not a manifest\n", f);
    std::fclose(f);
  }
  CampaignFixture plain;
  CampaignOptions options;
  options.days = 2;
  const auto expected = run_campaign(plain.world.internet, plain.clock,
                                     plain.prober, plain.targets, options);

  CampaignFixture fresh;
  const auto result = run(fresh, 2, dir.path);
  EXPECT_EQ(result.resumed_days, 0u);
  ASSERT_TRUE(result.checkpoint_ok);
  expect_same_result(expected, result);
  // The rewritten chain is valid again.
  const auto reloaded = corpus::load_checkpoint(dir.path);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->days.size(), 2u);
}

TEST(CampaignCheckpoint, CorruptSnapshotChainStartsFresh) {
  TempDir dir{"badsnap"};
  CampaignFixture first;
  (void)run(first, 2, dir.path);

  // Flip one byte inside day 0's snapshot; the manifest still parses, but
  // replay must reject the chain and start over.
  const std::string day0 = dir.path + "/" + corpus::snapshot_file_name(0);
  {
    std::FILE* f = std::fopen(day0.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 200, SEEK_SET), 0);
    int byte = std::fgetc(f);
    ASSERT_NE(byte, EOF);
    ASSERT_EQ(std::fseek(f, 200, SEEK_SET), 0);
    std::fputc(byte ^ 0x10, f);
    std::fclose(f);
  }

  CampaignFixture plain;
  CampaignOptions options;
  options.days = 3;
  const auto expected = run_campaign(plain.world.internet, plain.clock,
                                     plain.prober, plain.targets, options);

  CampaignFixture fresh;
  const auto result = run(fresh, 3, dir.path);
  EXPECT_EQ(result.resumed_days, 0u);
  expect_same_result(expected, result);
}

TEST(CampaignCheckpoint, DifferentSeedDiscardsTheCheckpoint) {
  TempDir dir{"seed"};
  CampaignFixture first;
  (void)run(first, 2, dir.path);

  CampaignFixture second;
  CampaignOptions options;
  options.days = 2;
  options.seed = 0xD1FF;
  options.checkpoint_dir = dir.path;
  const auto result = run_campaign(second.world.internet, second.clock,
                                   second.prober, second.targets, options);
  EXPECT_EQ(result.resumed_days, 0u);
  EXPECT_EQ(result.daily.size(), 2u);
}

TEST(CampaignCheckpoint, ExtendingACompletedCampaign) {
  // A finished 2-day campaign re-run with days=5 continues from day 2.
  TempDir dir{"extend"};
  TempDir whole{"extend_whole"};
  CampaignFixture uninterrupted;
  const auto expected = run(uninterrupted, 5, whole.path);

  CampaignFixture first;
  (void)run(first, 2, dir.path);
  CampaignFixture extended;
  const auto result = run(extended, 5, dir.path);
  EXPECT_EQ(result.resumed_days, 2u);
  expect_same_result(expected, result);
  expect_same_chain(whole.path, dir.path, 5);
}

}  // namespace
}  // namespace scent::core
