// Stage-level tests for the §4 funnel beyond the integration suite:
// advertisement filtering, the unique-last-hop filter, traceroute seeding,
// and rotator grouping.
#include "core/bootstrap.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "probe/prober.h"
#include "sim/scenario.h"

namespace scent::core {
namespace {

using namespace scent;

/// Small single-rotator world with a /40 advertisement (256 /48s).
sim::PaperWorld one_provider_world(std::uint64_t seed,
                                   unsigned advert_length = 40) {
  sim::WorldBuilder builder{seed};
  sim::PaperWorld world;
  sim::ProviderSpec spec;
  spec.asn = 65001;
  spec.name = "Solo";
  spec.country = "DE";
  spec.advertisement =
      net::Prefix{*net::Ipv6Address::parse("2001:db8::"), advert_length};
  spec.vendors = {{net::Oui{0x3810d5}, 1.0}};
  spec.eui64_fraction = 1.0;
  spec.low_byte_fraction = 0.0;
  spec.silent_fraction = 0.0;
  sim::PoolSpec pool;
  pool.pool_length = 46;
  pool.allocation_length = 56;
  pool.rotation.kind = sim::RotationPolicy::Kind::kStride;
  pool.rotation.stride = 236;
  pool.device_count = 900;
  spec.pools.push_back(pool);
  world.versatel = builder.add_provider(spec);
  world.internet = builder.take();
  return world;
}

probe::ProberOptions fast_opts() {
  probe::ProberOptions o;
  o.wire_mode = false;
  o.packets_per_second = 2000000;
  return o;
}

TEST(Bootstrap, AdvertLengthFilterSkipsBroadPrefixes) {
  // A /24 advertisement must be ignored with the default /32 filter.
  sim::PaperWorld world = one_provider_world(0xB001, 24);
  sim::VirtualClock clock{sim::hours(10)};
  probe::Prober prober{world.internet, clock, fast_opts()};
  const auto result = run_bootstrap(world.internet, clock, prober);
  EXPECT_TRUE(result.seed_48s.empty());
  EXPECT_TRUE(result.rotating_48s.empty());
}

TEST(Bootstrap, MinAdvertLengthOptionWidensScope) {
  sim::PaperWorld world = one_provider_world(0xB001, 24);
  sim::VirtualClock clock{sim::hours(10)};
  probe::Prober prober{world.internet, clock, fast_opts()};
  BootstrapOptions options;
  options.min_advert_length = 24;
  options.probes_per_48 = 4;
  const auto result = run_bootstrap(world.internet, clock, prober, options);
  EXPECT_FALSE(result.seed_48s.empty());
  EXPECT_FALSE(result.rotating_48s.empty());
}

TEST(Bootstrap, TracerouteSeedingMatchesProbeSeeding) {
  // Both stage-0 modes must discover the same /48 set: the traceroute's
  // last hop is the same CPE the single probe elicits.
  sim::PaperWorld world_a = one_provider_world(0xB002);
  sim::PaperWorld world_b = one_provider_world(0xB002);
  sim::VirtualClock clock_a{sim::hours(10)};
  sim::VirtualClock clock_b{sim::hours(10)};
  probe::Prober prober_a{world_a.internet, clock_a, fast_opts()};
  probe::Prober prober_b{world_b.internet, clock_b, fast_opts()};

  BootstrapOptions probe_mode;
  probe_mode.probes_per_48 = 2;
  BootstrapOptions trace_mode = probe_mode;
  trace_mode.seed_with_traceroute = true;

  const auto a = run_bootstrap(world_a.internet, clock_a, prober_a,
                               probe_mode);
  const auto b = run_bootstrap(world_b.internet, clock_b, prober_b,
                               trace_mode);
  EXPECT_EQ(a.seed_48s, b.seed_48s);
  EXPECT_EQ(a.rotating_48s, b.rotating_48s);
  // Traceroute mode costs strictly more packets for the same answer.
  EXPECT_GT(b.probes_sent, a.probes_sent);
}

TEST(Bootstrap, SharedLastHopSuppressesNonCustomer48s) {
  // A provider delegating one /44 to a single site: 16 /48s all answered
  // by the same CPE. The "unique EUI per /48" filter must reject them.
  sim::WorldBuilder builder{0xB003};
  sim::ProviderSpec spec;
  spec.asn = 65002;
  spec.name = "BigSite";
  spec.country = "JP";
  spec.advertisement = *net::Prefix::parse("2001:db9::/40");
  spec.vendors = {{net::Oui{0x344b50}, 1.0}};
  spec.eui64_fraction = 1.0;
  spec.low_byte_fraction = 0.0;
  spec.silent_fraction = 0.0;
  sim::PoolSpec pool;
  pool.pool_length = 44;
  pool.allocation_length = 44;  // the whole pool is one customer
  pool.device_count = 1;
  spec.pools.push_back(pool);
  builder.add_provider(spec);
  sim::Internet internet = builder.take();

  sim::VirtualClock clock{sim::hours(10)};
  probe::Prober prober{internet, clock, fast_opts()};
  BootstrapOptions options;
  options.probes_per_48 = 2;
  const auto result = run_bootstrap(internet, clock, prober, options);
  // The device responded, but no /48 qualifies as a customer /48.
  EXPECT_GT(result.eui64_addresses, 0u);
  EXPECT_TRUE(result.seed_48s.empty());
}

TEST(Bootstrap, GroupingSortsByCountDescending) {
  routing::BgpTable bgp;
  bgp.announce({*net::Prefix::parse("2001:db8::/32"), 1, "DE", "A"});
  bgp.announce({*net::Prefix::parse("2003::/32"), 2, "GR", "B"});
  std::vector<net::Prefix> rotators = {
      *net::Prefix::parse("2001:db8:1::/48"),
      *net::Prefix::parse("2001:db8:2::/48"),
      *net::Prefix::parse("2003:0:1::/48"),
  };
  const auto by_asn = rotators_by_asn(rotators, bgp);
  ASSERT_EQ(by_asn.size(), 2u);
  EXPECT_EQ(by_asn[0].key, "1");
  EXPECT_EQ(by_asn[0].count, 2u);
  const auto by_country = rotators_by_country(rotators, bgp);
  EXPECT_EQ(by_country[0].key, "DE");
  // Unattributable prefixes are dropped.
  rotators.push_back(*net::Prefix::parse("2a00::/48"));
  EXPECT_EQ(rotators_by_asn(rotators, bgp).size(), 2u);
}

TEST(Bootstrap, FunnelCountersAreMonotone) {
  sim::PaperWorld world = one_provider_world(0xB004);
  sim::VirtualClock clock{sim::hours(10)};
  probe::Prober prober{world.internet, clock, fast_opts()};
  BootstrapOptions options;
  options.probes_per_48 = 4;
  const auto result = run_bootstrap(world.internet, clock, prober, options);
  EXPECT_GE(result.total_addresses, result.eui64_addresses);
  EXPECT_GE(result.eui64_addresses, result.unique_iids);
  // Every rotating /48 came through the high-density stage.
  for (const auto& p48 : result.rotating_48s) {
    EXPECT_TRUE(std::find(result.high_density_48s.begin(),
                          result.high_density_48s.end(),
                          p48) != result.high_density_48s.end());
  }
  // Density partition covers all expanded /48s exactly once.
  EXPECT_EQ(result.expanded_48s.size(),
            result.high_density_48s.size() + result.low_density_48s.size() +
                result.unresponsive_48s.size());
}

}  // namespace
}  // namespace scent::core
