// Tests for artifact persistence: prefix lists and observation CSVs.
#include "core/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "corpus/snapshot.h"
#include "netbase/eui64.h"

namespace scent::core {
namespace {

net::Prefix pfx(const char* text) { return *net::Prefix::parse(text); }
net::Ipv6Address addr(const char* text) {
  return *net::Ipv6Address::parse(text);
}

/// Unique temp path per test; removed on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(const char* tag) {
    path = std::string{::testing::TempDir()} + "/scent_io_" + tag + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".txt";
  }
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(PrefixIo, RoundTrip) {
  TempFile file{"prefix_rt"};
  const std::vector<net::Prefix> prefixes = {
      pfx("2001:16b8:100::/46"), pfx("2003:e2::/32"), pfx("::/0"),
      pfx("2001:db8::1/128")};
  ASSERT_TRUE(save_prefixes(file.path, prefixes, "rotating /48s"));
  LoadStats stats;
  const auto loaded = load_prefixes(file.path, &stats);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, prefixes);
  EXPECT_EQ(stats.loaded, 4u);
  EXPECT_EQ(stats.skipped, 0u);
}

TEST(PrefixIo, SkipsCommentsBlanksAndGarbage) {
  TempFile file{"prefix_skip"};
  std::FILE* f = std::fopen(file.path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# header\n\n2001:db8::/32\nnot-a-prefix\n 2003:e2::/32 \n", f);
  std::fclose(f);
  LoadStats stats;
  const auto loaded = load_prefixes(file.path, &stats);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0], pfx("2001:db8::/32"));
  EXPECT_EQ((*loaded)[1], pfx("2003:e2::/32"));
  EXPECT_EQ(stats.skipped, 1u);
}

TEST(PrefixIo, MissingFileIsNullopt) {
  EXPECT_FALSE(load_prefixes("/nonexistent/dir/nope.txt").has_value());
}

TEST(ObservationIo, RoundTrip) {
  TempFile file{"obs_rt"};
  ObservationStore store;
  store.add(Observation{addr("2001:16b8:100:1200:dead:beef:1:2"),
                        addr("2001:16b8:100:1200:3a10:d5ff:feaa:bbcc"),
                        wire::Icmpv6Type::kDestinationUnreachable, 1,
                        sim::days(3) + 17});
  store.add(Observation{addr("2003:e2::1"), addr("2003:e2::2"),
                        wire::Icmpv6Type::kEchoReply, 0, -5});
  ASSERT_TRUE(save_observations(file.path, store));

  LoadStats stats;
  const auto loaded = load_observations(file.path, &stats);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(stats.loaded, 2u);
  EXPECT_EQ(stats.skipped, 0u);
  const auto& a = loaded->all()[0];
  EXPECT_EQ(a.target, addr("2001:16b8:100:1200:dead:beef:1:2"));
  EXPECT_EQ(a.response, addr("2001:16b8:100:1200:3a10:d5ff:feaa:bbcc"));
  EXPECT_EQ(a.type, wire::Icmpv6Type::kDestinationUnreachable);
  EXPECT_EQ(a.code, 1);
  EXPECT_EQ(a.time, sim::days(3) + 17);
  EXPECT_EQ(loaded->all()[1].time, -5);
  // Indexes still work after a round trip.
  EXPECT_EQ(loaded->unique_eui64_iids(), 1u);
}

TEST(ObservationIo, ParseRowRejectsMalformed) {
  EXPECT_TRUE(parse_observation_row("2001:db8::1,2001:db8::2,1,3,42"));
  EXPECT_FALSE(parse_observation_row(""));
  EXPECT_FALSE(parse_observation_row("2001:db8::1,2001:db8::2,1,3"));
  EXPECT_FALSE(parse_observation_row("2001:db8::1,2001:db8::2,1,3,42,extra"));
  EXPECT_FALSE(parse_observation_row("nonsense,2001:db8::2,1,3,42"));
  EXPECT_FALSE(parse_observation_row("2001:db8::1,nonsense,1,3,42"));
  EXPECT_FALSE(parse_observation_row("2001:db8::1,2001:db8::2,999,3,42"));
  EXPECT_FALSE(parse_observation_row("2001:db8::1,2001:db8::2,1,3,4x2"));
}

TEST(ObservationIo, LoadSkipsHeaderAndCountsBadRows) {
  TempFile file{"obs_skip"};
  std::FILE* f = std::fopen(file.path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(
      "target,response,type,code,time_us\n"
      "2001:db8::1,2001:db8::2,1,1,100\n"
      "garbage row\n"
      "# a comment\n"
      "2001:db8::3,2001:db8::4,129,0,200\n",
      f);
  std::fclose(f);
  LoadStats stats;
  const auto loaded = load_observations(file.path, &stats);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(stats.loaded, 2u);
  EXPECT_EQ(stats.skipped, 1u);
}

TEST(ObservationIo, EmptyStoreRoundTrips) {
  TempFile file{"obs_empty"};
  ASSERT_TRUE(save_observations(file.path, ObservationStore{}));
  const auto loaded = load_observations(file.path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

TEST(ObservationIo, TextAndBinaryPersistenceAgree) {
  // CSV is the debug/export path, the binary snapshot is the default
  // persistence format (corpus/snapshot.h); this equivalence test keeps
  // the two from drifting. Both serializations are exact for every column,
  // so a store must survive either path unchanged.
  TempFile csv{"equiv_csv"};
  TempFile snap{"equiv_snap"};
  ObservationStore store;
  for (std::uint64_t i = 0; i < 200; ++i) {
    Observation obs;
    obs.target = net::Ipv6Address{0x20010db800000000ULL | (i << 16), i + 1};
    obs.response =
        i % 2 == 0
            ? net::Ipv6Address{0x2003e20000000000ULL | (i << 8),
                               net::mac_to_eui64(
                                   net::MacAddress{0x3a10d5000000ULL + i})}
            : net::Ipv6Address{0x2003e20000000000ULL | (i << 8), 0xabcd + i};
    obs.type = i % 2 == 0 ? wire::Icmpv6Type::kEchoReply
                          : wire::Icmpv6Type::kDestinationUnreachable;
    obs.code = static_cast<std::uint8_t>(i % 3);
    obs.time = sim::days(static_cast<std::int64_t>(i % 4)) -
               static_cast<std::int64_t>(i % 2);
    store.add(obs);
  }

  ASSERT_TRUE(save_observations(csv.path, store));
  const auto from_text = load_observations(csv.path);
  ASSERT_TRUE(from_text.has_value());

  corpus::SnapshotWriter writer;
  writer.append(store);
  ASSERT_TRUE(writer.write(snap.path));
  corpus::SnapshotReader reader;
  ASSERT_TRUE(reader.open(snap.path));
  const auto from_binary = reader.read_store();
  ASSERT_TRUE(from_binary.has_value());

  ASSERT_EQ(from_text->size(), store.size());
  ASSERT_EQ(from_binary->size(), store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(from_text->target(i), from_binary->target(i));
    EXPECT_EQ(from_text->response(i), from_binary->response(i));
    EXPECT_EQ(from_text->type_code(i), from_binary->type_code(i));
    EXPECT_EQ(from_text->time(i), from_binary->time(i));
    EXPECT_EQ(from_binary->target(i), store.target(i));
    EXPECT_EQ(from_binary->response(i), store.response(i));
  }
  EXPECT_EQ(from_text->unique_eui64_iids(), from_binary->unique_eui64_iids());
  EXPECT_EQ(from_text->unique_responses(), from_binary->unique_responses());
}

TEST(SaveErrors, UnwritablePathReportsFalse) {
  EXPECT_FALSE(save_prefixes("/nonexistent_dir_zzz/p.txt",
                             {pfx("2001:db8::/48")}));
  EXPECT_FALSE(
      save_observations("/nonexistent_dir_zzz/o.csv", ObservationStore{}));
}

#ifdef __linux__
TEST(SaveErrors, DiskFullIsReportedNotSwallowed) {
  // /dev/full accepts the open and buffers writes, then fails at flush —
  // the disk-full mode that only surfaces at fclose. Both writers must
  // report it as a false return rather than silently truncating.
  std::FILE* probe = std::fopen("/dev/full", "w");
  if (probe == nullptr) GTEST_SKIP() << "/dev/full not available";
  std::fclose(probe);

  std::vector<net::Prefix> prefixes(4096, pfx("2001:db8::/48"));
  EXPECT_FALSE(save_prefixes("/dev/full", prefixes, "doomed"));

  ObservationStore store;
  Observation obs;
  obs.target = addr("2001:db8::1");
  obs.response = addr("2001:db8::2");
  obs.type = static_cast<wire::Icmpv6Type>(129);
  obs.code = 0;
  obs.time = 100;
  for (int i = 0; i < 4096; ++i) store.add(obs);
  EXPECT_FALSE(save_observations("/dev/full", store));
}
#endif

}  // namespace
}  // namespace scent::core
