// Tests for Algorithms 1 and 2, the observation store, and density
// classification.
#include <gtest/gtest.h>

#include "core/density.h"
#include "core/inference.h"
#include "core/observation.h"

namespace scent::core {
namespace {

net::Ipv6Address addr(const char* text) {
  return *net::Ipv6Address::parse(text);
}
net::Prefix pfx(const char* text) { return *net::Prefix::parse(text); }

constexpr std::uint64_t kMac1 = 0x3810d5000001ULL;
constexpr std::uint64_t kMac2 = 0x3810d5000002ULL;

net::Ipv6Address eui_response(std::uint64_t network, std::uint64_t mac) {
  return net::Ipv6Address{network, net::mac_to_eui64(net::MacAddress{mac})};
}

// ---- span_to_prefix_length -------------------------------------------------

TEST(SpanToPrefixLength, SingleSlotIsSlash64) {
  EXPECT_EQ(span_to_prefix_length(100, 100), 64u);
}

TEST(SpanToPrefixLength, PowersOfTwo) {
  EXPECT_EQ(span_to_prefix_length(0, 1), 63u);
  EXPECT_EQ(span_to_prefix_length(0, 255), 56u);
  EXPECT_EQ(span_to_prefix_length(0, 256), 55u);
  EXPECT_EQ(span_to_prefix_length(0, 15), 60u);
  EXPECT_EQ(span_to_prefix_length(0, (1ULL << 18) - 1), 46u);
}

TEST(SpanToPrefixLength, OffsetDoesNotMatter) {
  EXPECT_EQ(span_to_prefix_length(1000, 1000 + 255),
            span_to_prefix_length(0, 255));
}

TEST(MedianOf, Basics) {
  EXPECT_FALSE(median_of({}).has_value());
  EXPECT_EQ(median_of({5}).value(), 5u);
  EXPECT_EQ(median_of({1, 2, 3}).value(), 2u);
  EXPECT_EQ(median_of({64, 56, 56, 64, 56}).value(), 56u);
  // Even size: lower median.
  EXPECT_EQ(median_of({1, 2, 3, 4}).value(), 2u);
}

// ---- Algorithm 1: AllocationSizeInference ----------------------------------

TEST(AllocationInference, Slash56TargetSpan) {
  // Device answers for probed /64s across its whole /56.
  AllocationSizeInference inf;
  const std::uint64_t base = addr("2001:db8:0:5600::").network();
  const net::Ipv6Address response = eui_response(base, kMac1);
  for (std::uint64_t i = 0; i < 256; ++i) {
    inf.observe(net::Ipv6Address{base + i, 0x1234}, response);
  }
  EXPECT_EQ(inf.length_for(net::MacAddress{kMac1}).value(), 56u);
}

TEST(AllocationInference, SingleProbeLooksLikeSlash64) {
  AllocationSizeInference inf;
  inf.observe(addr("2001:db8::1"), eui_response(addr("2001:db8::").network(),
                                                kMac1));
  EXPECT_EQ(inf.length_for(net::MacAddress{kMac1}).value(), 64u);
}

TEST(AllocationInference, IgnoresNonEuiResponses) {
  AllocationSizeInference inf;
  inf.observe(addr("2001:db8::1"),
              addr("2001:db8::dead:beef:1234:5678"));
  EXPECT_EQ(inf.device_count(), 0u);
  EXPECT_FALSE(inf.median_length().has_value());
}

TEST(AllocationInference, MedianAcrossDevices) {
  AllocationSizeInference inf;
  // Three /56 devices, one /64 device.
  for (std::uint64_t d = 0; d < 3; ++d) {
    const std::uint64_t base =
        addr("2001:db8::").network() + (d << 8);
    const auto response = eui_response(base, kMac1 + d);
    inf.observe(net::Ipv6Address{base, 1}, response);
    inf.observe(net::Ipv6Address{base + 255, 1}, response);
  }
  const std::uint64_t solo = addr("2001:db8:99::").network();
  inf.observe(net::Ipv6Address{solo, 1}, eui_response(solo, kMac1 + 9));
  EXPECT_EQ(inf.median_length().value(), 56u);
  EXPECT_EQ(inf.device_count(), 4u);
  EXPECT_EQ(inf.per_device_lengths().size(), 4u);
}

TEST(AllocationInference, UnknownMacReturnsNullopt) {
  AllocationSizeInference inf;
  EXPECT_FALSE(inf.length_for(net::MacAddress{kMac1}).has_value());
}

// ---- Algorithm 2: RotationPoolInference ------------------------------------

TEST(RotationPoolInference, StaticDeviceIsSlash64) {
  RotationPoolInference inf;
  const std::uint64_t net = addr("2001:db8:0:100::").network();
  inf.observe(eui_response(net, kMac1));
  inf.observe(eui_response(net, kMac1));
  EXPECT_EQ(inf.length_for(net::MacAddress{kMac1}).value(), 64u);
}

TEST(RotationPoolInference, Slash46PoolSpan) {
  RotationPoolInference inf;
  const std::uint64_t base = addr("2001:16b8:100::").network();
  // Observed across nearly the whole /46 (2^18 /64s).
  inf.observe(eui_response(base, kMac1));
  inf.observe(eui_response(base + (1ULL << 18) - 1, kMac1));
  EXPECT_EQ(inf.length_for(net::MacAddress{kMac1}).value(), 46u);
}

TEST(RotationPoolInference, MedianAcrossDevices) {
  RotationPoolInference inf;
  const std::uint64_t base = addr("2001:16b8:100::").network();
  // Two rotators across a /48-wide range, one static.
  for (std::uint64_t d = 0; d < 2; ++d) {
    inf.observe(eui_response(base + d, kMac1 + d));
    inf.observe(eui_response(base + d + 65535, kMac1 + d));
  }
  inf.observe(eui_response(base, kMac2 + 50));
  EXPECT_EQ(inf.median_length().value(), 48u);
}

TEST(RotationPoolInference, PoolForAlignsToPoolLength) {
  RotationPoolInference inf;
  const std::uint64_t base = addr("2001:16b8:101:4200::").network();
  inf.observe(eui_response(base, kMac1));
  inf.observe(eui_response(base + 1000, kMac1));
  const auto pool = inf.pool_for(net::MacAddress{kMac1}, 46);
  ASSERT_TRUE(pool.has_value());
  EXPECT_EQ(pool->length(), 46u);
  EXPECT_EQ(*pool, pfx("2001:16b8:100::/46"));
  EXPECT_TRUE(pool->contains(net::Ipv6Address{base + 1000, 0}));
}

TEST(RotationPoolInference, PoolForWidensWhenStraddlingBoundary) {
  RotationPoolInference inf;
  // Observations straddle a /46 boundary: 2001:16b8:103:ff00 and
  // 2001:16b8:104:0100 are in different /46s.
  inf.observe(eui_response(addr("2001:16b8:103:ff00::").network(), kMac1));
  inf.observe(eui_response(addr("2001:16b8:104:100::").network(), kMac1));
  const auto pool = inf.pool_for(net::MacAddress{kMac1}, 46);
  ASSERT_TRUE(pool.has_value());
  EXPECT_LT(pool->length(), 46u);
  EXPECT_TRUE(pool->contains(addr("2001:16b8:103:ff00::")));
  EXPECT_TRUE(pool->contains(addr("2001:16b8:104:100::")));
}

TEST(RotationPoolInference, PoolForUnknownMac) {
  RotationPoolInference inf;
  EXPECT_FALSE(inf.pool_for(net::MacAddress{kMac1}, 46).has_value());
}

// ---- ObservationStore -------------------------------------------------------

TEST(ObservationStore, IndexesByMac) {
  ObservationStore store;
  store.add(Observation{addr("2001:db8::1"),
                        eui_response(addr("2001:db8::").network(), kMac1),
                        wire::Icmpv6Type::kDestinationUnreachable, 1, 0});
  store.add(Observation{addr("2001:db8:1::1"),
                        eui_response(addr("2001:db8:1::").network(), kMac1),
                        wire::Icmpv6Type::kDestinationUnreachable, 1, 100});
  store.add(Observation{addr("2001:db8:2::1"),
                        addr("2001:db8:2::abcd:9d71:c001:d00d"),
                        wire::Icmpv6Type::kDestinationUnreachable, 1, 200});

  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.unique_eui64_iids(), 1u);
  EXPECT_EQ(store.unique_eui64_responses(), 2u);
  EXPECT_EQ(store.unique_responses(), 3u);
  const auto networks = store.networks_of(net::MacAddress{kMac1});
  EXPECT_EQ(networks.size(), 2u);
  EXPECT_TRUE(store.networks_of(net::MacAddress{kMac2}).empty());
}

TEST(ObservationStore, SkipsUnrespondedProbeResults) {
  ObservationStore store;
  probe::ProbeResult r;
  r.responded = false;
  store.add(r);
  EXPECT_TRUE(store.empty());
}

TEST(ObservationStore, IndexRebuildsAfterMutation) {
  ObservationStore store;
  store.add(Observation{addr("2001:db8::1"),
                        eui_response(addr("2001:db8::").network(), kMac1),
                        wire::Icmpv6Type::kDestinationUnreachable, 1, 0});
  EXPECT_EQ(store.unique_eui64_iids(), 1u);
  store.add(Observation{addr("2001:db8::2"),
                        eui_response(addr("2001:db8::").network(), kMac2),
                        wire::Icmpv6Type::kDestinationUnreachable, 1, 0});
  EXPECT_EQ(store.unique_eui64_iids(), 2u);
}

// ---- Density ----------------------------------------------------------------

probe::ProbeResult responsive(net::Ipv6Address target,
                              net::Ipv6Address source) {
  probe::ProbeResult r;
  r.target = target;
  r.response_source = source;
  r.responded = true;
  return r;
}

TEST(Density, UnresponsivePrefix) {
  const auto d = classify_density(pfx("2001:db8::/48"), 256,
                                  std::vector<probe::ProbeResult>{});
  EXPECT_EQ(d.klass, DensityClass::kUnresponsive);
  EXPECT_EQ(d.density(), 0.0);
}

TEST(Density, LowDensityAtThreshold) {
  // Exactly 2 unique EUI responders: low (the paper's <=2 cut).
  std::vector<probe::ProbeResult> results;
  for (int i = 0; i < 10; ++i) {
    results.push_back(responsive(
        addr("2001:db8::1"),
        eui_response(addr("2001:db8::").network(), kMac1 + (i % 2))));
  }
  const auto d = classify_density(pfx("2001:db8::/48"), 256, results);
  EXPECT_EQ(d.klass, DensityClass::kLow);
  EXPECT_EQ(d.unique_eui64, 2u);
  EXPECT_EQ(d.responses, 10u);
}

TEST(Density, HighDensityAboveThreshold) {
  std::vector<probe::ProbeResult> results;
  for (std::uint64_t i = 0; i < 3; ++i) {
    results.push_back(responsive(
        addr("2001:db8::1"),
        eui_response(addr("2001:db8::").network() + i, kMac1 + i)));
  }
  const auto d = classify_density(pfx("2001:db8::/48"), 256, results);
  EXPECT_EQ(d.klass, DensityClass::kHigh);
  EXPECT_NEAR(d.density(), 3.0 / 256.0, 1e-9);
}

TEST(Density, NonEuiResponsesAreResponsiveButNotDense) {
  std::vector<probe::ProbeResult> results;
  for (std::uint64_t i = 0; i < 10; ++i) {
    results.push_back(
        responsive(addr("2001:db8::1"),
                   net::Ipv6Address{addr("2001:db8::").network() + i,
                                    0x9d71c001d00d0000ULL + i}));
  }
  const auto d = classify_density(pfx("2001:db8::/48"), 256, results);
  EXPECT_EQ(d.klass, DensityClass::kLow);  // responsive, zero unique EUI
  EXPECT_EQ(d.unique_eui64, 0u);
}

TEST(Density, CustomThreshold) {
  std::vector<probe::ProbeResult> results;
  for (std::uint64_t i = 0; i < 5; ++i) {
    results.push_back(responsive(
        addr("2001:db8::1"),
        eui_response(addr("2001:db8::").network() + i, kMac1 + i)));
  }
  EXPECT_EQ(classify_density(pfx("2001:db8::/48"), 256, results, 10).klass,
            DensityClass::kLow);
  EXPECT_EQ(classify_density(pfx("2001:db8::/48"), 256, results, 2).klass,
            DensityClass::kHigh);
}

}  // namespace
}  // namespace scent::core
