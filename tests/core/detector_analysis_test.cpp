// Tests for the rotation detector, homogeneity analysis, pathology
// classification, and the stride predictor.
#include <gtest/gtest.h>

#include "core/homogeneity.h"
#include "core/pathology.h"
#include "core/predictor.h"
#include "core/rotation_detector.h"

namespace scent::core {
namespace {

net::Ipv6Address addr(const char* text) {
  return *net::Ipv6Address::parse(text);
}
net::Prefix pfx(const char* text) { return *net::Prefix::parse(text); }

net::Ipv6Address eui_response(std::uint64_t network, std::uint64_t mac) {
  return net::Ipv6Address{network, net::mac_to_eui64(net::MacAddress{mac})};
}

constexpr std::uint64_t kAvmMac = 0x3810d5000001ULL;
constexpr std::uint64_t kZteMac = 0x344b50000001ULL;

// ---- Rotation detector -------------------------------------------------------

TEST(RotationDetector, UnchangedPairsAreNotRotating) {
  Snapshot s1;
  Snapshot s2;
  const auto target = addr("2001:db8:1:200::1");
  const auto response = eui_response(addr("2001:db8:1:200::").network(),
                                     kAvmMac);
  s1.record(target, response);
  s2.record(target, response);
  const auto verdicts = detect_rotation(s1, s2);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].rotating);
  EXPECT_EQ(verdicts[0].prefix, pfx("2001:db8:1::/48"));
  EXPECT_EQ(verdicts[0].eui_targets, 1u);
  EXPECT_EQ(verdicts[0].changed, 0u);
}

TEST(RotationDetector, ChangedEuiFlagsRotation) {
  Snapshot s1;
  Snapshot s2;
  const auto target = addr("2001:db8:1:200::1");
  s1.record(target, eui_response(addr("2001:db8:1:200::").network(), kAvmMac));
  s2.record(target,
            eui_response(addr("2001:db8:1:200::").network(), kAvmMac + 5));
  const auto verdicts = detect_rotation(s1, s2);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0].rotating);
}

TEST(RotationDetector, DisappearanceFlagsRotation) {
  Snapshot s1;
  Snapshot s2;
  s1.record(addr("2001:db8:1::1"),
            eui_response(addr("2001:db8:1::").network(), kAvmMac));
  const auto verdicts = detect_rotation(s1, s2);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0].rotating);
}

TEST(RotationDetector, AppearanceFlagsRotation) {
  Snapshot s1;
  Snapshot s2;
  s2.record(addr("2001:db8:1::1"),
            eui_response(addr("2001:db8:1::").network(), kAvmMac));
  const auto verdicts = detect_rotation(s1, s2);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0].rotating);
  EXPECT_EQ(verdicts[0].changed, 1u);
}

TEST(RotationDetector, NonEuiResponsesAreIgnored) {
  Snapshot s1;
  Snapshot s2;
  s1.record(addr("2001:db8:1::1"), addr("2001:db8:1::9d71:c001:d00d:1234"));
  EXPECT_TRUE(detect_rotation(s1, s2).empty());
}

TEST(RotationDetector, GroupsBySlash48) {
  Snapshot s1;
  Snapshot s2;
  // Churn in 2001:db8:1::/48; stability in 2001:db8:2::/48.
  s1.record(addr("2001:db8:1:100::1"),
            eui_response(addr("2001:db8:1:100::").network(), kAvmMac));
  s2.record(addr("2001:db8:1:100::1"),
            eui_response(addr("2001:db8:1:100::").network(), kAvmMac + 1));
  const auto stable = eui_response(addr("2001:db8:2:100::").network(),
                                   kZteMac);
  s1.record(addr("2001:db8:2:100::1"), stable);
  s2.record(addr("2001:db8:2:100::1"), stable);

  const auto verdicts = detect_rotation(s1, s2);
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_TRUE(verdicts[0].rotating);   // 2001:db8:1::/48 sorts first
  EXPECT_FALSE(verdicts[1].rotating);
}

TEST(RotationDetector, ChurnThresholdSuppressesSmallChanges) {
  Snapshot s1;
  Snapshot s2;
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto target = net::Ipv6Address{
        addr("2001:db8:1::").network() + i, 1};
    const auto r1 = eui_response(addr("2001:db8:1::").network() + i,
                                 kAvmMac + i);
    s1.record(target, r1);
    // Only 2 of 10 change.
    s2.record(target, i < 2 ? eui_response(addr("2001:db8:1::").network() + i,
                                           kAvmMac + 100 + i)
                            : r1);
  }
  EXPECT_TRUE(detect_rotation(s1, s2, 0)[0].rotating);
  EXPECT_TRUE(detect_rotation(s1, s2, 1)[0].rotating);
  EXPECT_FALSE(detect_rotation(s1, s2, 2)[0].rotating);
}

// ---- Homogeneity --------------------------------------------------------------

routing::BgpTable two_as_bgp() {
  routing::BgpTable bgp;
  bgp.announce({pfx("2001:4dd0::/32"), 8422, "DE", "NetCologne"});
  bgp.announce({pfx("2405:4800::/32"), 7552, "VN", "Viettel"});
  return bgp;
}

TEST(Homogeneity, DominantVendorFractionPerAs) {
  ObservationStore store;
  // 30 AVM + 2 Zyxel devices in AS8422.
  for (std::uint64_t i = 0; i < 30; ++i) {
    store.add(Observation{addr("2001:4dd0::1"),
                          eui_response(addr("2001:4dd0:1::").network() + i,
                                       kAvmMac + i),
                          wire::Icmpv6Type::kDestinationUnreachable, 1, 0});
  }
  for (std::uint64_t i = 0; i < 2; ++i) {
    store.add(Observation{addr("2001:4dd0::1"),
                          eui_response(addr("2001:4dd0:2::").network() + i,
                                       0x001349000000ULL + i),
                          wire::Icmpv6Type::kDestinationUnreachable, 1, 0});
  }
  const auto bgp = two_as_bgp();
  const auto result =
      analyze_homogeneity(store, bgp, oui::builtin_registry(), 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].asn, 8422u);
  EXPECT_EQ(result[0].unique_iids, 32u);
  EXPECT_EQ(result[0].dominant_vendor(), "AVM GmbH");
  EXPECT_NEAR(result[0].index(), 30.0 / 32.0, 1e-9);
  ASSERT_EQ(result[0].vendors.size(), 2u);
  EXPECT_EQ(result[0].vendors[1].vendor, "Zyxel Communications");
}

TEST(Homogeneity, MinIidThresholdExcludesSmallAses) {
  ObservationStore store;
  for (std::uint64_t i = 0; i < 5; ++i) {
    store.add(Observation{addr("2001:4dd0::1"),
                          eui_response(addr("2001:4dd0:1::").network() + i,
                                       kAvmMac + i),
                          wire::Icmpv6Type::kDestinationUnreachable, 1, 0});
  }
  const auto bgp = two_as_bgp();
  EXPECT_TRUE(
      analyze_homogeneity(store, bgp, oui::builtin_registry(), 100).empty());
  EXPECT_EQ(
      analyze_homogeneity(store, bgp, oui::builtin_registry(), 5).size(), 1u);
}

TEST(Homogeneity, UnknownOuisBucketedAsUnknown) {
  ObservationStore store;
  for (std::uint64_t i = 0; i < 4; ++i) {
    store.add(Observation{addr("2001:4dd0::1"),
                          eui_response(addr("2001:4dd0:1::").network() + i,
                                       0xdddddd000000ULL + i),
                          wire::Icmpv6Type::kDestinationUnreachable, 1, 0});
  }
  const auto bgp = two_as_bgp();
  const auto result =
      analyze_homogeneity(store, bgp, oui::builtin_registry(), 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].dominant_vendor(), "(unknown)");
}

TEST(Homogeneity, SameMacCountsOncePerAs) {
  ObservationStore store;
  // Duplicate observations of one MAC: unique_iids stays 1.
  for (int i = 0; i < 5; ++i) {
    store.add(Observation{addr("2001:4dd0::1"),
                          eui_response(addr("2001:4dd0:1::").network(),
                                       kAvmMac),
                          wire::Icmpv6Type::kDestinationUnreachable, 1,
                          sim::days(i)});
  }
  const auto bgp = two_as_bgp();
  const auto result =
      analyze_homogeneity(store, bgp, oui::builtin_registry(), 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].unique_iids, 1u);
}

// ---- Pathology -----------------------------------------------------------------

void observe_in_as(ObservationStore& store, std::uint64_t mac,
                   const char* network, sim::TimePoint t) {
  store.add(Observation{addr("::1"), eui_response(addr(network).network(), mac),
                        wire::Icmpv6Type::kDestinationUnreachable, 1, t});
}

TEST(Pathology, SingleAsIidIsNotReported) {
  ObservationStore store;
  observe_in_as(store, kAvmMac, "2001:4dd0:1::", 0);
  observe_in_as(store, kAvmMac, "2001:4dd0:2::", sim::days(1));
  const auto bgp = two_as_bgp();
  EXPECT_TRUE(find_multi_as_iids(store, bgp).empty());
}

TEST(Pathology, ConcurrentReuseDetected) {
  ObservationStore store;
  const auto bgp = two_as_bgp();
  // Same MAC in both ASes every day for 5 days.
  for (int day = 0; day < 5; ++day) {
    observe_in_as(store, kZteMac, "2001:4dd0:1::", sim::days(day));
    observe_in_as(store, kZteMac, "2405:4800:1::", sim::days(day));
  }
  const auto result = find_multi_as_iids(store, bgp);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].kind, PathologyKind::kConcurrentReuse);
  EXPECT_EQ(result[0].concurrent_days, 5u);
  EXPECT_EQ(result[0].asns, (std::vector<routing::Asn>{7552, 8422}));
}

TEST(Pathology, DefaultMacClassifiedEvenWhenConcurrent) {
  ObservationStore store;
  const auto bgp = two_as_bgp();
  for (int day = 0; day < 5; ++day) {
    observe_in_as(store, 0, "2001:4dd0:1::", sim::days(day));
    observe_in_as(store, 0, "2405:4800:1::", sim::days(day));
  }
  const auto result = find_multi_as_iids(store, bgp);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].kind, PathologyKind::kDefaultMac);
}

TEST(Pathology, ProviderSwitchDetected) {
  ObservationStore store;
  const auto bgp = two_as_bgp();
  for (int day = 0; day < 10; ++day) {
    observe_in_as(store, kAvmMac, "2001:4dd0:1::", sim::days(day));
  }
  for (int day = 12; day < 20; ++day) {
    observe_in_as(store, kAvmMac, "2405:4800:1::", sim::days(day));
  }
  const auto result = find_multi_as_iids(store, bgp);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].kind, PathologyKind::kProviderSwitch);
  EXPECT_EQ(result[0].switch_from, 8422u);
  EXPECT_EQ(result[0].switch_to, 7552u);
  EXPECT_EQ(result[0].switch_day, 12);
}

TEST(Pathology, OverlappingAsUseIsOtherNotSwitch) {
  ObservationStore store;
  const auto bgp = two_as_bgp();
  observe_in_as(store, kAvmMac, "2001:4dd0:1::", sim::days(0));
  observe_in_as(store, kAvmMac, "2405:4800:1::", sim::days(1));
  observe_in_as(store, kAvmMac, "2001:4dd0:1::", sim::days(2));
  const auto result = find_multi_as_iids(store, bgp);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].kind, PathologyKind::kMultiAsOther);
}

TEST(Pathology, PresenceOfBuildsDailyAsSets) {
  ObservationStore store;
  const auto bgp = two_as_bgp();
  observe_in_as(store, kZteMac, "2001:4dd0:1::", sim::days(3));
  observe_in_as(store, kZteMac, "2405:4800:1::", sim::days(3) + sim::hours(2));
  observe_in_as(store, kZteMac, "2405:4800:1::", sim::days(4));
  const auto presence = presence_of(net::MacAddress{kZteMac}, store, bgp);
  ASSERT_EQ(presence.days.size(), 2u);
  EXPECT_EQ(presence.days.at(3).size(), 2u);
  EXPECT_EQ(presence.days.at(4).size(), 1u);
}

// ---- Stride predictor -----------------------------------------------------------

TEST(Predictor, FitsCleanDailyStride) {
  const net::Prefix pool = pfx("2001:16b8:100::/46");
  std::vector<Sighting> sightings;
  const std::uint64_t base = pool.base().network();
  // Slots (in /56 units = 256 /64s): 10, 246, 482 -> stride 236.
  for (std::int64_t day = 0; day < 3; ++day) {
    sightings.push_back(Sighting{
        day, base + static_cast<std::uint64_t>((10 + day * 236)) * 256});
  }
  const auto model = fit_stride(sightings, pool, 56);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(model->stride, 236u);
  EXPECT_EQ(model->support, 1.0);
  EXPECT_EQ(model->predict_slot(3), (10 + 3 * 236) % 1024u);
  EXPECT_EQ(model->predict_allocation(3),
            pool.subnet(56, net::Uint128{(10 + 3 * 236) % 1024}));
}

TEST(Predictor, HandlesWrapAroundPool) {
  const net::Prefix pool = pfx("2001:16b8:100::/46");
  const std::uint64_t base = pool.base().network();
  std::vector<Sighting> sightings;
  for (std::int64_t day = 0; day < 6; ++day) {
    const std::uint64_t slot = (900 + static_cast<std::uint64_t>(day) * 236) %
                               1024;
    sightings.push_back(Sighting{day, base + slot * 256});
  }
  const auto model = fit_stride(sightings, pool, 56);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(model->stride, 236u);
  // Prediction into the future wraps modulo the pool.
  EXPECT_EQ(model->predict_slot(10), (900 + 10 * 236) % 1024u);
  // Prediction into the past works too.
  EXPECT_EQ(model->predict_slot(-2),
            (900 + 1024 - ((2 * 236) % 1024)) % 1024u);
}

TEST(Predictor, RejectsNonRotatingDevice) {
  const net::Prefix pool = pfx("2001:16b8:100::/46");
  const std::uint64_t base = pool.base().network();
  std::vector<Sighting> sightings;
  for (std::int64_t day = 0; day < 5; ++day) {
    sightings.push_back(Sighting{day, base + 10 * 256});
  }
  // Stride 0: no rotation signal.
  EXPECT_FALSE(fit_stride(sightings, pool, 56).has_value());
}

TEST(Predictor, RejectsInconsistentSightings) {
  const net::Prefix pool = pfx("2001:16b8:100::/46");
  const std::uint64_t base = pool.base().network();
  // Random jumps with no consistent stride.
  std::vector<Sighting> sightings = {
      Sighting{0, base + 10 * 256}, Sighting{1, base + 700 * 256},
      Sighting{2, base + 35 * 256}, Sighting{3, base + 501 * 256},
      Sighting{4, base + 77 * 256}};
  EXPECT_FALSE(fit_stride(sightings, pool, 56, 0.6).has_value());
}

TEST(Predictor, ToleratesOneMissedDay) {
  const net::Prefix pool = pfx("2001:16b8:100::/46");
  const std::uint64_t base = pool.base().network();
  // Days 0,1,3,4: the 1->3 gap is 2 days = 472 slots, cleanly divisible.
  std::vector<Sighting> sightings;
  for (const std::int64_t day : {0, 1, 3, 4}) {
    const std::uint64_t slot = (10 + static_cast<std::uint64_t>(day) * 236) %
                               1024;
    sightings.push_back(Sighting{day, base + slot * 256});
  }
  const auto model = fit_stride(sightings, pool, 56);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(model->stride, 236u);
}

TEST(Predictor, IgnoresSightingsOutsidePool) {
  const net::Prefix pool = pfx("2001:16b8:100::/46");
  std::vector<Sighting> sightings = {
      Sighting{0, addr("2003:e2::").network()},
      Sighting{1, addr("2003:e2::").network() + 256}};
  EXPECT_FALSE(fit_stride(sightings, pool, 56).has_value());
}

TEST(Predictor, RequiresTwoSightings) {
  const net::Prefix pool = pfx("2001:16b8:100::/46");
  EXPECT_FALSE(fit_stride({}, pool, 56).has_value());
  EXPECT_FALSE(
      fit_stride({Sighting{0, pool.base().network()}}, pool, 56).has_value());
}

}  // namespace
}  // namespace scent::core
