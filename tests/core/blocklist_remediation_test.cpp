// Tests for the two beyond-paper extension modules: defensive blocklisting
// under prefix rotation (§2.2/§9) and firmware remediation (§8).
#include <gtest/gtest.h>

#include <set>

#include "core/blocklist.h"
#include "core/tracker.h"
#include "netbase/eui64.h"
#include "probe/prober.h"
#include "sim/scenario.h"

namespace scent::core {
namespace {

using namespace scent;

net::Prefix pfx(const char* text) { return *net::Prefix::parse(text); }
net::Ipv6Address addr(const char* text) {
  return *net::Ipv6Address::parse(text);
}

// ---- Blocklist primitive ----------------------------------------------------

TEST(Blocklist, BlocksByLongestPrefixMatch) {
  Blocklist list;
  list.block(pfx("2001:db8:1:100::/56"), 0);
  EXPECT_TRUE(list.blocked(addr("2001:db8:1:1ff::1")));
  EXPECT_FALSE(list.blocked(addr("2001:db8:1:200::1")));
  EXPECT_EQ(list.entries(), 1u);
}

TEST(Blocklist, ExactAddressBlock) {
  Blocklist list;
  list.block(pfx("2001:db8::1/128"), 0);
  EXPECT_TRUE(list.blocked(addr("2001:db8::1")));
  EXPECT_FALSE(list.blocked(addr("2001:db8::2")));
}

// ---- Blocking policies under rotation ----------------------------------------

/// Episode driver: a rotating world; device 0 is the abuser, the rest are
/// innocent customers of the same pool.
struct Episode {
  sim::PaperWorld world = sim::make_tiny_world(0xB10C, 96);
  sim::VirtualClock clock{sim::hours(12)};

  const sim::RotationPool& pool() {
    return world.internet.provider(world.versatel).pools()[0];
  }

  BlockingOutcome run(BlockScope scope, unsigned days) {
    BlockingPolicyEvaluator evaluator{
        scope, pool().config().allocation_length, pool().config().prefix};
    for (unsigned day = 0; day < days; ++day) {
      clock.advance_to(sim::days(day) + sim::hours(12));
      const net::Ipv6Address abuser = pool().wan_address_of(0, clock.now());
      std::vector<net::Ipv6Address> innocents;
      for (std::size_t d = 1; d < pool().devices().size(); ++d) {
        innocents.push_back(pool().wan_address_of(d, clock.now()));
      }
      evaluator.day(abuser, innocents, clock.now());
    }
    return evaluator.outcome();
  }
};

TEST(BlockingPolicy, AddressBlockEvadesDailyUnderRotation) {
  Episode episode;
  const auto outcome = episode.run(BlockScope::kAddress, 7);
  // Every day the abuser has a new address: the /128 block never fires.
  EXPECT_EQ(outcome.days_abuser_evaded, 7u);
  EXPECT_EQ(outcome.days_abuser_blocked, 0u);
  EXPECT_EQ(outcome.innocent_blocked_device_days, 0u);
  EXPECT_EQ(outcome.blocklist_entries, 7u);  // one useless entry per day
}

TEST(BlockingPolicy, AllocationBlockAlsoEvaded) {
  Episode episode;
  const auto outcome = episode.run(BlockScope::kAllocation, 7);
  EXPECT_EQ(outcome.days_abuser_evaded, 7u);
  // Stale /56 entries start hitting innocents who rotate into them: with
  // stride 236 mod 1024, device #80 lands in the abuser's day-k /56 four
  // days later (236*4 + 80 = 1024).
  EXPECT_GT(outcome.innocent_blocked_device_days, 0u);
}

TEST(BlockingPolicy, PoolBlockStopsAbuserAtMassiveCollateral) {
  Episode episode;
  const auto outcome = episode.run(BlockScope::kPool, 7);
  // Day 0 evades (reactive), days 1-6 blocked.
  EXPECT_EQ(outcome.days_abuser_evaded, 1u);
  EXPECT_EQ(outcome.days_abuser_blocked, 6u);
  // ...but every innocent in the pool is blocked from day 0 onward (the
  // reactive entry lands the same day the attack is observed).
  EXPECT_EQ(outcome.innocent_blocked_device_days, 95u * 7u);
}

TEST(BlockingPolicy, EuiFollowBlocksWithoutCollateral) {
  Episode episode;
  const auto outcome = episode.run(BlockScope::kEuiFollow, 7);
  // The defender tracks the scent each day and re-blocks the abuser's
  // current /64 before the attack: blocked every day, zero collateral
  // (allocations are exclusive).
  EXPECT_EQ(outcome.days_abuser_blocked, 7u);
  EXPECT_EQ(outcome.innocent_blocked_device_days, 0u);
}

TEST(BlockingPolicy, StaticProviderAddressBlockWorks) {
  // Without rotation the IPv4-style block is fine — the contrast the
  // paper's conclusion draws.
  sim::PaperWorld world = sim::make_tiny_world(0xB10D, 24);
  sim::VirtualClock clock{sim::hours(12)};
  const auto& pool = world.internet.provider(world.viettel).pools()[0];
  BlockingPolicyEvaluator evaluator{BlockScope::kAddress,
                                    pool.config().allocation_length,
                                    pool.config().prefix};
  for (unsigned day = 0; day < 5; ++day) {
    clock.advance_to(sim::days(day) + sim::hours(12));
    std::vector<net::Ipv6Address> innocents;
    for (std::size_t d = 1; d < pool.devices().size(); ++d) {
      innocents.push_back(pool.wan_address_of(d, clock.now()));
    }
    evaluator.day(pool.wan_address_of(0, clock.now()), innocents,
                  clock.now());
  }
  const auto outcome = evaluator.outcome();
  EXPECT_EQ(outcome.days_abuser_evaded, 1u);  // day 0 only
  EXPECT_EQ(outcome.days_abuser_blocked, 4u);
  EXPECT_EQ(outcome.innocent_blocked_device_days, 0u);
}

// ---- Remediation (§8) ---------------------------------------------------------

TEST(Remediation, UpgradeSwitchesEui64ToPrivacyAtScheduledTime) {
  sim::PaperWorld world = sim::make_tiny_world(0x06F5, 24);
  auto& pool =
      world.internet.provider(world.versatel).pools()[0];
  auto& device = pool.mutable_devices()[3];
  device.privacy_upgrade_at = sim::days(5);

  const auto before = pool.wan_address_of(3, sim::days(4) + sim::hours(12));
  const auto after = pool.wan_address_of(3, sim::days(6) + sim::hours(12));
  EXPECT_TRUE(net::is_eui64(before));
  EXPECT_FALSE(net::is_eui64(after));
  // And post-upgrade IIDs change across rotations (privacy semantics).
  const auto later = pool.wan_address_of(3, sim::days(7) + sim::hours(12));
  EXPECT_NE(after.iid(), later.iid());
}

TEST(Remediation, SchedulerUpgradesRequestedFraction) {
  sim::PaperWorld world = sim::make_tiny_world(0x06F6, 48);
  const std::size_t scheduled = sim::schedule_privacy_upgrades(
      world.internet, world.versatel, 0.5, sim::days(1), sim::days(10), 9);
  EXPECT_GT(scheduled, 12u);
  EXPECT_LT(scheduled, 36u);

  // All scheduled instants fall inside the window.
  const auto& pool = world.internet.provider(world.versatel).pools()[0];
  std::size_t in_window = 0;
  for (const auto& device : pool.devices()) {
    if (device.privacy_upgrade_at <= sim::days(10)) {
      EXPECT_GE(device.privacy_upgrade_at, sim::days(1));
      ++in_window;
    }
  }
  EXPECT_EQ(in_window, scheduled);
}

TEST(Remediation, SchedulerIsDeterministic) {
  sim::PaperWorld a = sim::make_tiny_world(0x06F7, 24);
  sim::PaperWorld b = sim::make_tiny_world(0x06F7, 24);
  EXPECT_EQ(sim::schedule_privacy_upgrades(a.internet, a.versatel, 0.4,
                                           0, sim::days(5), 42),
            sim::schedule_privacy_upgrades(b.internet, b.versatel, 0.4,
                                           0, sim::days(5), 42));
}

TEST(Remediation, TrackerLosesUpgradedDevice) {
  sim::PaperWorld world = sim::make_tiny_world(0x06F8, 32);
  auto& pool = world.internet.provider(world.versatel).pools()[0];
  const net::MacAddress victim = pool.devices()[7].mac;
  pool.mutable_devices()[7].privacy_upgrade_at = sim::days(3);

  sim::VirtualClock clock{sim::hours(12)};
  probe::Prober prober{world.internet, clock,
                       {.packets_per_second = 1000000, .wire_mode = false}};
  TrackerConfig config;
  config.target_mac = victim;
  config.pool = pool.config().prefix;
  config.allocation_length = 56;
  config.seed = 5;
  Tracker tracker{prober, config};

  int found_before = 0;
  int found_after = 0;
  for (std::int64_t day = 0; day < 6; ++day) {
    clock.advance_to(sim::days(day) + sim::hours(12));
    const bool found = tracker.locate(day).found;
    (day < 3 ? found_before : found_after) += found ? 1 : 0;
  }
  EXPECT_EQ(found_before, 3);  // trackable while EUI-64
  EXPECT_EQ(found_after, 0);   // scent gone after the firmware fix
}

TEST(Remediation, UpgradedDeviceStillAnswersProbes) {
  // Remediation removes the identifier, not the ICMPv6 behavior: probes
  // still elicit errors, just from an unlinkable source address.
  sim::PaperWorld world = sim::make_tiny_world(0x06F9, 16);
  auto& pool = world.internet.provider(world.versatel).pools()[0];
  pool.mutable_devices()[2].privacy_upgrade_at = 0;

  sim::VirtualClock clock{sim::days(1) + sim::hours(12)};
  probe::Prober prober{world.internet, clock,
                       {.packets_per_second = 1000000, .wire_mode = false}};
  const net::Prefix alloc = pool.allocation_of(2, clock.now());
  const auto r = prober.probe_one(probe::target_in(alloc, 77));
  ASSERT_TRUE(r.responded);
  EXPECT_FALSE(net::is_eui64(r.response_source));
  EXPECT_EQ(r.response_source, pool.wan_address_of(2, clock.now()));
}

}  // namespace
}  // namespace scent::core
