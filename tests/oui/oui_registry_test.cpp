// Tests for the OUI -> manufacturer registry.
#include "oui/oui_registry.h"

#include <gtest/gtest.h>

namespace scent::oui {
namespace {

TEST(OuiRegistry, BuiltinContainsPaperVendors) {
  const Registry& reg = builtin_registry();
  // AVM's 38:10:d5 block is the paper's Figure 1 example.
  EXPECT_EQ(reg.vendor(net::Oui{0x3810d5}).value_or(""), "AVM GmbH");
  EXPECT_EQ(reg.vendor(net::Oui{0x344b50}).value_or(""), "ZTE Corporation");
  EXPECT_EQ(reg.vendor(net::Oui{0x001349}).value_or(""),
            "Zyxel Communications");
  EXPECT_EQ(reg.vendor(net::Oui{0x00a057}).value_or(""), "Lancom Systems");
}

TEST(OuiRegistry, UnknownOuiReturnsNullopt) {
  EXPECT_FALSE(builtin_registry().vendor(net::Oui{0xdddddd}).has_value());
}

TEST(OuiRegistry, LookupByMacUsesItsOui) {
  const auto mac = *net::MacAddress::parse("38:10:d5:12:34:56");
  EXPECT_EQ(builtin_registry().vendor(mac).value_or(""), "AVM GmbH");
}

TEST(OuiRegistry, OuisOfFindsAllVendorBlocks) {
  const auto avm = builtin_registry().ouis_of("AVM");
  EXPECT_GE(avm.size(), 4u);
  for (const auto& oui : avm) {
    EXPECT_EQ(builtin_registry().vendor(oui).value_or(""), "AVM GmbH");
  }
  EXPECT_TRUE(builtin_registry().ouis_of("NoSuchVendor").empty());
}

TEST(OuiRegistry, AddReplacesExisting) {
  Registry reg;
  reg.add(net::Oui{0x112233}, "First");
  reg.add(net::Oui{0x112233}, "Second");
  EXPECT_EQ(reg.vendor(net::Oui{0x112233}).value_or(""), "Second");
  EXPECT_EQ(reg.size(), 1u);
}

TEST(OuiRegistry, LoadIeeeTextParsesHexLines) {
  Registry reg;
  const char* text =
      "OUI/MA-L                                                    Organization\n"
      "company_id                                                  Organization\n"
      "                                                            Address\n"
      "\n"
      "38-10-D5   (hex)\t\tAVM GmbH\n"
      "3810D5     (base 16)\t\tAVM GmbH\n"
      "\t\t\t\tAlt-Moabit 95\n"
      "\n"
      "34-4B-50   (hex)\t\tZTE Corporation\n"
      "344B50     (base 16)\t\tZTE Corporation\n";
  EXPECT_EQ(reg.load_ieee_text(text), 2u);
  EXPECT_EQ(reg.vendor(net::Oui{0x3810d5}).value_or(""), "AVM GmbH");
  EXPECT_EQ(reg.vendor(net::Oui{0x344b50}).value_or(""), "ZTE Corporation");
}

TEST(OuiRegistry, LoadIeeeTextSkipsMalformedLines) {
  Registry reg;
  EXPECT_EQ(reg.load_ieee_text("garbage\n(hex) but no oui\nZZ-10-D5 (hex) X\n"),
            0u);
  EXPECT_EQ(reg.size(), 0u);
}

TEST(OuiRegistry, LoadIeeeTextTrimsWhitespace) {
  Registry reg;
  reg.load_ieee_text("00-11-22   (hex)\t\t  Spaced Vendor Inc.  \r\n");
  EXPECT_EQ(reg.vendor(net::Oui{0x001122}).value_or(""),
            "Spaced Vendor Inc.");
}

TEST(OuiRegistry, OuiMasks24Bits) {
  EXPECT_EQ(net::Oui{0xff123456}.value(), 0x123456u);
}

}  // namespace
}  // namespace scent::oui
