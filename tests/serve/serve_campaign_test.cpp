// Campaign integration for the serve sink: the ServeTable a campaign
// maintains must answer identically under the barrier and streamed
// schedulers, match a fresh fused rebuild of the whole campaign corpus,
// and survive kill+resume — a campaign resumed from its checkpoint chain
// re-applies the restored days as deltas and then serves exactly what an
// uninterrupted run serves.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "analysis/engine.h"
#include "core/campaign.h"
#include "probe/prober.h"
#include "serve/serve_table.h"
#include "sim/scenario.h"

#include "serve_test_util.h"

namespace scent::serve {
namespace {

using test::expect_same_table;
using test::kTsan;

struct CampaignFixture {
  sim::PaperWorld world;
  sim::VirtualClock clock{sim::hours(10)};
  probe::Prober prober;
  std::vector<net::Prefix> targets;

  CampaignFixture()
      : world(sim::make_tiny_world(0x5EE, 48)),
        prober(world.internet, clock,
               {.packets_per_second = 1000000, .wire_mode = false}) {
    const auto& pool = world.internet.provider(world.versatel).pools()[0];
    for (std::uint64_t i = 0; i < 4; ++i) {
      targets.push_back(net::Prefix{
          pool.config().prefix.subnet(48, net::Uint128{i}).base(), 48});
    }
  }
};

struct TempDir {
  std::string path;
  explicit TempDir(const char* tag) {
    path = std::string{::testing::TempDir()} + "/scent_serve_" + tag + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// Versions from distinct campaign runs attributed against distinct
/// BgpTable instances, so ad pointers are compared by null-ness only.
void expect_same_version(const TableVersion& a, const TableVersion& b) {
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.day, b.day);
  EXPECT_EQ(a.delta_rows, b.delta_rows);
  expect_same_table(a.table, b.table, /*same_bgp=*/false);
  EXPECT_EQ(a.day_window.map(), b.day_window.map());
  EXPECT_EQ(a.prev_window.map(), b.prev_window.map());
}

TEST(ServeCampaign, BarrierAndPipelineServeIdentically) {
  const unsigned days = 4;
  std::shared_ptr<const TableVersion> versions[2];
  core::ObservationStore corpora[2];
  for (const bool pipeline : {false, true}) {
    CampaignFixture f;
    ServeOptions serve_options;
    serve_options.bgp = &f.world.internet.bgp();
    serve_options.threads = kTsan ? 8 : 4;
    serve_options.oversubscribe = true;
    ServeTable table{serve_options};

    core::CampaignOptions options;
    options.days = days;
    options.threads = kTsan ? 8 : 4;
    options.oversubscribe = true;
    options.pipeline = pipeline;
    options.serve = &table;
    auto result = run_campaign(f.world.internet, f.clock, f.prober,
                               f.targets, options);
    ASSERT_EQ(table.versions_published(), days);
    versions[pipeline ? 1 : 0] = table.current();
    corpora[pipeline ? 1 : 0] = std::move(result.observations);
  }
  ASSERT_NE(versions[0], nullptr);
  ASSERT_NE(versions[1], nullptr);
  ASSERT_EQ(corpora[0].size(), corpora[1].size());
  expect_same_version(*versions[0], *versions[1]);
}

TEST(ServeCampaign, MaintainedTableMatchesFreshRebuildOfCorpus) {
  CampaignFixture f;
  ServeOptions serve_options;
  serve_options.bgp = &f.world.internet.bgp();
  serve_options.threads = 2;
  serve_options.oversubscribe = true;
  ServeTable table{serve_options};

  core::CampaignOptions options;
  options.days = 4;
  options.threads = 2;
  options.oversubscribe = true;
  options.serve = &table;
  const auto result = run_campaign(f.world.internet, f.clock, f.prober,
                                   f.targets, options);

  const auto version = table.current();
  ASSERT_NE(version, nullptr);
  const analysis::AggregateTable fresh =
      analysis::analyze(result.observations, &f.world.internet.bgp());
  expect_same_table(fresh, version->table);
  EXPECT_EQ(version->table.rows_scanned, result.observations.size());
}

TEST(ServeCampaign, KilledAndResumedCampaignServesIdentically) {
  const unsigned days = kTsan ? 4 : 6;
  const unsigned kill_after = days / 2;

  // Uninterrupted reference run.
  std::shared_ptr<const TableVersion> uninterrupted;
  {
    CampaignFixture f;
    TempDir dir{"uninterrupted"};
    ServeOptions serve_options;
    serve_options.bgp = &f.world.internet.bgp();
    serve_options.threads = 2;
    serve_options.oversubscribe = true;
    ServeTable table{serve_options};
    core::CampaignOptions options;
    options.days = days;
    options.threads = 2;
    options.oversubscribe = true;
    options.checkpoint_dir = dir.path;
    options.serve = &table;
    (void)run_campaign(f.world.internet, f.clock, f.prober, f.targets,
                       options);
    uninterrupted = table.current();
  }
  ASSERT_NE(uninterrupted, nullptr);

  // Killed run: only kill_after days complete (modeling the ServeTable
  // dying with the process), then a resumed run with a FRESH ServeTable
  // replays the chain and finishes the remaining days — streamed, at a
  // different thread count, to stack the determinism contracts.
  TempDir dir{"resumed"};
  {
    CampaignFixture f;
    ServeOptions serve_options;
    serve_options.bgp = &f.world.internet.bgp();
    ServeTable table{serve_options};
    core::CampaignOptions options;
    options.days = kill_after;
    options.threads = 2;
    options.oversubscribe = true;
    options.checkpoint_dir = dir.path;
    options.serve = &table;
    (void)run_campaign(f.world.internet, f.clock, f.prober, f.targets,
                       options);
    ASSERT_EQ(table.versions_published(), kill_after);
  }
  CampaignFixture f;
  ServeOptions serve_options;
  serve_options.bgp = &f.world.internet.bgp();
  serve_options.threads = kTsan ? 8 : 4;
  serve_options.oversubscribe = true;
  ServeTable table{serve_options};
  core::CampaignOptions options;
  options.days = days;
  options.threads = kTsan ? 8 : 4;
  options.oversubscribe = true;
  options.pipeline = true;
  options.checkpoint_dir = dir.path;
  options.serve = &table;
  const auto result = run_campaign(f.world.internet, f.clock, f.prober,
                                   f.targets, options);
  EXPECT_EQ(result.resumed_days, kill_after);
  // Replayed days publish versions too: the resumed table went through
  // the same number of applies as the uninterrupted one.
  ASSERT_EQ(table.versions_published(), days);

  const auto resumed = table.current();
  ASSERT_NE(resumed, nullptr);
  expect_same_version(*uninterrupted, *resumed);
}

}  // namespace
}  // namespace scent::serve
