// Unit tests for ServeTable's versioning contract: nothing before the
// first apply, 1-based version numbering with day stamps and window
// chaining, bootstrap-equals-analyze (a full scan IS version 0's delta),
// immutability of held versions across slot-ring laps, and the implicit
// TableVersion -> AggregateTable& conversion the derive.h reports ride.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/derive.h"
#include "analysis/engine.h"
#include "analysis/input.h"
#include "serve/serve_table.h"

#include "serve_test_util.h"

namespace scent::serve {
namespace {

using test::append_day;
using test::expect_same_table;
using test::make_bgp;

TEST(ServeTable, NoVersionBeforeFirstApply) {
  const routing::BgpTable bgp = make_bgp();
  ServeOptions options;
  options.bgp = &bgp;
  const ServeTable table{options};
  EXPECT_EQ(table.current(), nullptr);
  EXPECT_EQ(table.versions_published(), 0u);
  EXPECT_EQ(table.reads(), 0u);
}

TEST(ServeTable, BootstrapFullScanEqualsAnalyze) {
  const routing::BgpTable bgp = make_bgp();
  core::ObservationStore store;
  for (std::int64_t day = 0; day < 8; ++day) {
    append_day(store, 0xB007, day, 400);
  }

  ServeOptions options;
  options.bgp = &bgp;
  ServeTable table{options};
  table.apply(analysis::StoreInput{store}, 7);

  const auto version = table.current();
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->version, 1u);
  EXPECT_EQ(version->day, 7);
  EXPECT_EQ(version->delta_rows, store.size());

  const analysis::AggregateTable fresh = analysis::analyze(store, &bgp);
  expect_same_table(fresh, version->table);

  // The bootstrap's day window covers all its rows — identical to asking
  // analyze for a whole-corpus RowWindow.
  analysis::AnalysisOptions window_options;
  window_options.windows = {analysis::RowWindow{0, store.size()}};
  const analysis::AggregateTable with_window =
      analysis::analyze(store, &bgp, window_options);
  ASSERT_EQ(with_window.window_snapshots.size(), 1u);
  EXPECT_EQ(version->day_window.map(), with_window.window_snapshots[0].map());
  EXPECT_TRUE(version->prev_window.map().empty());
}

TEST(ServeTable, VersionNumberingDayStampsAndWindowChaining) {
  const routing::BgpTable bgp = make_bgp();
  core::ObservationStore store;
  ServeOptions options;
  options.bgp = &bgp;
  ServeTable table{options};

  core::Snapshot::Map previous_day_map;
  for (std::int64_t day = 0; day < 5; ++day) {
    const std::size_t begin = store.size();
    append_day(store, 0x5E0, day, 300);
    table.apply(analysis::StoreInput{store, begin, store.size()}, day);

    const auto version = table.current();
    ASSERT_NE(version, nullptr);
    EXPECT_EQ(version->version, static_cast<std::uint64_t>(day) + 1);
    EXPECT_EQ(version->day, day);
    EXPECT_EQ(version->delta_rows, store.size() - begin);
    EXPECT_EQ(version->prev_window.map(), previous_day_map);
    previous_day_map = version->day_window.map();
  }
  EXPECT_EQ(table.versions_published(), 5u);
}

TEST(ServeTable, EmptyDeltaPublishesUnchangedTable) {
  const routing::BgpTable bgp = make_bgp();
  core::ObservationStore store;
  append_day(store, 0xE4, 0, 250);

  ServeOptions options;
  options.bgp = &bgp;
  ServeTable table{options};
  table.apply(analysis::StoreInput{store}, 0);
  const auto before = table.current();
  ASSERT_NE(before, nullptr);

  const core::ObservationStore empty;
  table.apply(analysis::StoreInput{empty}, 1);
  const auto after = table.current();
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->version, 2u);
  EXPECT_EQ(after->day, 1);
  EXPECT_EQ(after->delta_rows, 0u);
  expect_same_table(before->table, after->table);
  EXPECT_TRUE(after->day_window.map().empty());
  EXPECT_EQ(after->prev_window.map(), before->day_window.map());
}

TEST(ServeTable, HeldVersionSurvivesSlotRingLaps) {
  const routing::BgpTable bgp = make_bgp();
  core::ObservationStore store;
  ServeOptions options;
  options.bgp = &bgp;
  ServeTable table{options};

  const std::size_t first_begin = store.size();
  append_day(store, 0x1A9, 0, 200);
  table.apply(analysis::StoreInput{store, first_begin, store.size()}, 0);
  const std::shared_ptr<const TableVersion> held = table.current();
  ASSERT_NE(held, nullptr);
  const std::size_t held_devices = held->table.devices.size();
  const std::uint64_t held_rows = held->table.rows_scanned;

  // Lap the 8-slot ring twice over: the writer recycles version 1's slot
  // (and every other) while we keep the shared_ptr pinned.
  for (std::int64_t day = 1; day <= 20; ++day) {
    const std::size_t begin = store.size();
    append_day(store, 0x1A9, day, 200);
    table.apply(analysis::StoreInput{store, begin, store.size()}, day);
  }

  EXPECT_EQ(held->version, 1u);
  EXPECT_EQ(held->table.devices.size(), held_devices);
  EXPECT_EQ(held->table.rows_scanned, held_rows);
  const auto latest = table.current();
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->version, 21u);
  EXPECT_GT(latest->table.rows_scanned, held->table.rows_scanned);
}

TEST(ServeTable, TableVersionConvertsForDeriveReports) {
  const routing::BgpTable bgp = make_bgp();
  core::ObservationStore store;
  for (std::int64_t day = 0; day < 6; ++day) {
    append_day(store, 0xDE4, day, 350);
  }

  ServeOptions options;
  options.bgp = &bgp;
  ServeTable table{options};
  table.apply(analysis::StoreInput{store}, 5);
  const auto version = table.current();
  ASSERT_NE(version, nullptr);

  const analysis::AggregateTable fresh = analysis::analyze(store, &bgp);
  EXPECT_EQ(analysis::allocation_median(*version),
            analysis::allocation_median(fresh));
  EXPECT_EQ(analysis::pool_median(*version), analysis::pool_median(fresh));
  EXPECT_EQ(analysis::allocation_medians_by_as(*version),
            analysis::allocation_medians_by_as(fresh));
  ASSERT_FALSE(version->table.devices.empty());
  const net::MacAddress mac = version->table.devices.begin()->first;
  EXPECT_EQ(analysis::pool_length_for(*version, mac),
            analysis::pool_length_for(fresh, mac));
  const auto sightings = analysis::sightings_of(*version, mac);
  const auto fresh_sightings = analysis::sightings_of(fresh, mac);
  ASSERT_EQ(sightings.size(), fresh_sightings.size());
  for (std::size_t i = 0; i < sightings.size(); ++i) {
    EXPECT_EQ(sightings[i].day, fresh_sightings[i].day);
    EXPECT_EQ(sightings[i].network, fresh_sightings[i].network);
  }
}

TEST(ServeTable, ReadsCounterTracksAcquisitions) {
  const routing::BgpTable bgp = make_bgp();
  core::ObservationStore store;
  append_day(store, 0xC0, 0, 100);

  ServeOptions options;
  options.bgp = &bgp;
  ServeTable table{options};
  table.apply(analysis::StoreInput{store}, 0);
  EXPECT_EQ(table.reads(), 0u);
  for (int i = 0; i < 5; ++i) ASSERT_NE(table.current(), nullptr);
  EXPECT_EQ(table.reads(), 5u);
}

}  // namespace
}  // namespace scent::serve
