// The §5k acceptance matrix: a ServeTable maintained by N delta-applies
// must be field-for-field identical to a fresh fused rebuild over the
// same prefix of rows — after EVERY apply, at {1,2,4,8} threads
// (oversubscribed so low-core CI still shards), from store inputs and
// from a persisted per-day snapshot chain. Also pins the day-window
// publication: version N's day_window equals a fresh RowWindow snapshot
// over day N's rows, and prev_window chains from version N-1.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/engine.h"
#include "analysis/input.h"
#include "corpus/snapshot.h"
#include "serve/serve_table.h"

#include "serve_test_util.h"

namespace scent::serve {
namespace {

using test::append_day;
using test::expect_same_table;
using test::kTsan;
using test::make_bgp;

struct DayCorpus {
  core::ObservationStore store;
  std::vector<std::size_t> day_begin;  ///< day_begin[d] .. day_begin[d+1]
};

DayCorpus make_day_corpus(std::uint64_t seed, std::size_t days,
                          std::size_t rows_per_day) {
  DayCorpus corpus;
  for (std::size_t day = 0; day < days; ++day) {
    corpus.day_begin.push_back(corpus.store.size());
    append_day(corpus.store, seed, static_cast<std::int64_t>(day),
               rows_per_day);
  }
  corpus.day_begin.push_back(corpus.store.size());
  return corpus;
}

TEST(ServeDifferential, DeltaChainMatchesFreshRebuildAtEveryDay) {
  const std::size_t days = kTsan ? 10 : 30;
  const std::size_t rows_per_day = kTsan ? 300 : 1000;
  const std::vector<unsigned> thread_counts =
      kTsan ? std::vector<unsigned>{2, 8}
            : std::vector<unsigned>{1, 2, 4, 8};

  const routing::BgpTable bgp = make_bgp();
  const DayCorpus corpus = make_day_corpus(0xD1FF, days, rows_per_day);

  for (const unsigned threads : thread_counts) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    ServeOptions options;
    options.bgp = &bgp;
    options.threads = threads;
    options.oversubscribe = true;
    ServeTable table{options};

    core::Snapshot::Map previous_day_map;
    for (std::size_t day = 0; day < days; ++day) {
      SCOPED_TRACE(testing::Message() << "day=" << day);
      const std::size_t begin = corpus.day_begin[day];
      const std::size_t end = corpus.day_begin[day + 1];
      table.apply(analysis::StoreInput{corpus.store, begin, end},
                  static_cast<std::int64_t>(day));

      const auto version = table.current();
      ASSERT_NE(version, nullptr);
      EXPECT_EQ(version->version, day + 1);

      // Fresh rebuild over the same prefix — always serial, so this also
      // asserts cross-thread-count equality of the maintained state.
      analysis::AnalysisOptions fresh_options;
      fresh_options.windows = {analysis::RowWindow{begin, end}};
      const analysis::AggregateTable fresh =
          analysis::analyze(analysis::StoreInput{corpus.store, 0, end}, &bgp,
                  fresh_options);
      analysis::AggregateTable fresh_no_windows = fresh;
      fresh_no_windows.window_snapshots.clear();
      expect_same_table(fresh_no_windows, version->table);

      ASSERT_EQ(fresh.window_snapshots.size(), 1u);
      EXPECT_EQ(version->day_window.map(), fresh.window_snapshots[0].map());
      EXPECT_EQ(version->prev_window.map(), previous_day_map);
      previous_day_map = version->day_window.map();
    }
  }
}

struct TempDir {
  std::string path;
  std::vector<std::string> files;
  TempDir() { path = ::testing::TempDir(); }
  ~TempDir() {
    for (const auto& f : files) std::remove(f.c_str());
  }
  std::string next(std::size_t i) {
    files.push_back(path + "/scent_serve_chain_" +
                    std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
                    "_" + std::to_string(i) + ".snap");
    return files.back();
  }
};

TEST(ServeDifferential, ChainInputDeltasMatchStoreDeltas) {
  const std::size_t days = kTsan ? 6 : 12;
  const std::size_t rows_per_day = kTsan ? 250 : 600;
  const routing::BgpTable bgp = make_bgp();
  const DayCorpus corpus = make_day_corpus(0xC4A1, days, rows_per_day);

  // Persist each day as one snapshot file — the campaign's checkpoint
  // chain shape.
  TempDir dir;
  std::vector<std::string> paths;
  for (std::size_t day = 0; day < days; ++day) {
    corpus::SnapshotWriter writer;
    writer.append(
        corpus.store.view(corpus.day_begin[day], corpus.day_begin[day + 1]));
    paths.push_back(dir.next(day));
    ASSERT_TRUE(writer.write(paths.back()));
  }

  ServeOptions options;
  options.bgp = &bgp;
  options.threads = kTsan ? 8 : 4;
  options.oversubscribe = true;
  ServeTable from_chain{options};
  ServeTable from_store{options};
  for (std::size_t day = 0; day < days; ++day) {
    from_chain.apply(analysis::ChainInput{{paths[day]}},
                     static_cast<std::int64_t>(day));
    from_store.apply(
        analysis::StoreInput{corpus.store, corpus.day_begin[day],
                             corpus.day_begin[day + 1]},
        static_cast<std::int64_t>(day));
  }

  const auto chain_version = from_chain.current();
  const auto store_version = from_store.current();
  ASSERT_NE(chain_version, nullptr);
  ASSERT_NE(store_version, nullptr);
  expect_same_table(store_version->table, chain_version->table);
  EXPECT_EQ(chain_version->day_window.map(),
            store_version->day_window.map());
  EXPECT_EQ(chain_version->prev_window.map(),
            store_version->prev_window.map());

  const analysis::AggregateTable fresh = analysis::analyze(corpus.store, &bgp);
  expect_same_table(fresh, chain_version->table);
}

}  // namespace
}  // namespace scent::serve
