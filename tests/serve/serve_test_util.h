// serve_test_util.h - shared fixtures for the serve suites: a day-ordered
// synthetic corpus (each day's rows are one delta), the full AggregateTable
// field-for-field comparison, and the TSan-detection constant the matrix
// shrinkers key off.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>

#include "analysis/aggregate.h"
#include "core/observation.h"
#include "netbase/eui64.h"
#include "routing/bgp_table.h"
#include "sim/rng.h"
#include "sim/sim_time.h"

namespace scent::serve::test {

#if defined(__SANITIZE_THREAD__)
inline constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
inline constexpr bool kTsan = true;
#else
inline constexpr bool kTsan = false;
#endif
#else
inline constexpr bool kTsan = false;
#endif

/// Nested announcements plus unannounced space, so delta attribution hits
/// the cached, more-specific and null paths (same table the engine
/// equivalence suite uses).
inline routing::BgpTable make_bgp() {
  routing::BgpTable bgp;
  bgp.announce({*net::Prefix::parse("2001:db8::/32"), 65001, "DE", "RotorDE"});
  bgp.announce(
      {*net::Prefix::parse("2001:db8:4400::/40"), 65003, "DE", "CarveOut"});
  bgp.announce({*net::Prefix::parse("2003:e200::/32"), 65002, "VN", "StatVN"});
  return bgp;
}

/// Appends one campaign day of synthetic observations to `store` — devices
/// that roam across ASes, privacy-addressed rows, and unrouted space.
/// Days must be appended in ascending order: the serve contract (like the
/// engine's shard merge) is that later rows arrive after earlier ones.
inline void append_day(core::ObservationStore& store, std::uint64_t seed,
                       std::int64_t day, std::size_t rows) {
  sim::Rng rng{sim::mix64(seed, static_cast<std::uint64_t>(day))};
  const std::uint64_t as_base[3] = {0x20010db800000000ULL,
                                    0x20010db844000000ULL,
                                    0x2003e20000000000ULL};
  for (std::size_t i = 0; i < rows; ++i) {
    const std::uint64_t device = rng.below(48);
    const net::MacAddress mac{0x3810d5000000ULL + device};
    const std::uint64_t as_pick =
        device % 4 == 0 ? rng.below(3) : device % 3;
    const std::uint64_t network =
        as_base[as_pick] |
        ((device * 7 + static_cast<std::uint64_t>(day)) % 256) << 8;

    core::Observation obs;
    obs.target = net::Ipv6Address{network, 0xbeef0000ULL + i};
    if (rng.chance(0.15)) {
      const std::uint64_t net2 =
          rng.chance(0.5) ? network : 0x2a00000000000000ULL | (device << 8);
      obs.response = net::Ipv6Address{net2, rng.next() | 0x0400000000000000ULL};
    } else {
      obs.response = net::Ipv6Address{network, net::mac_to_eui64(mac)};
    }
    obs.type = wire::Icmpv6Type::kEchoReply;
    obs.code = 0;
    obs.time = sim::days(day) + static_cast<std::int64_t>(i % 1000);
    store.add(obs);
  }
}

/// Field-for-field table equality — the §5k acceptance bar. threads_used
/// is execution metadata and deliberately not compared. `same_bgp` is
/// false when the two tables attributed against different BgpTable
/// instances (e.g. two campaign fixtures): PerAsSpan::ad then points into
/// different allocations, so null-ness is compared instead of identity
/// (asn, country and name equality are asserted either way).
inline void expect_same_table(const analysis::AggregateTable& want,
                              const analysis::AggregateTable& got,
                              bool same_bgp = true) {
  EXPECT_EQ(want.rows_scanned, got.rows_scanned);
  EXPECT_EQ(want.eui_rows, got.eui_rows);
  EXPECT_EQ(want.failed_files, got.failed_files);

  ASSERT_EQ(want.devices.size(), got.devices.size());
  for (std::size_t i = 0; i < want.devices.size(); ++i) {
    const auto& [mac_a, dev_a] = want.devices.begin()[i];
    const auto& [mac_b, dev_b] = got.devices.begin()[i];
    ASSERT_EQ(mac_a, mac_b) << "device slot " << i;
    EXPECT_EQ(dev_a.oui, dev_b.oui);
    EXPECT_EQ(dev_a.observations, dev_b.observations);
    EXPECT_EQ(dev_a.target_lo, dev_b.target_lo);
    EXPECT_EQ(dev_a.target_hi, dev_b.target_hi);
    EXPECT_EQ(dev_a.response_lo, dev_b.response_lo);
    EXPECT_EQ(dev_a.response_hi, dev_b.response_hi);
    EXPECT_EQ(dev_a.first_day, dev_b.first_day);
    EXPECT_EQ(dev_a.last_day, dev_b.last_day);
    EXPECT_EQ(dev_a.day_bits, dev_b.day_bits);
    ASSERT_EQ(dev_a.per_as.size(), dev_b.per_as.size()) << mac_a.to_string();
    for (std::size_t k = 0; k < dev_a.per_as.size(); ++k) {
      const analysis::PerAsSpan& a = dev_a.per_as[k];
      const analysis::PerAsSpan& b = dev_b.per_as[k];
      EXPECT_EQ(a.asn, b.asn);
      if (same_bgp) {
        EXPECT_EQ(a.ad, b.ad);
      } else {
        EXPECT_EQ(a.ad == nullptr, b.ad == nullptr);
      }
      EXPECT_EQ(a.target_lo, b.target_lo);
      EXPECT_EQ(a.target_hi, b.target_hi);
      EXPECT_EQ(a.response_lo, b.response_lo);
      EXPECT_EQ(a.response_hi, b.response_hi);
      EXPECT_EQ(a.observations, b.observations);
      EXPECT_EQ(a.days, b.days);
    }
    ASSERT_EQ(dev_a.sightings.size(), dev_b.sightings.size());
    for (std::size_t k = 0; k < dev_a.sightings.size(); ++k) {
      EXPECT_EQ(dev_a.sightings[k].day, dev_b.sightings[k].day);
      EXPECT_EQ(dev_a.sightings[k].network, dev_b.sightings[k].network);
    }
  }

  ASSERT_EQ(want.as_rollups.size(), got.as_rollups.size());
  for (std::size_t i = 0; i < want.as_rollups.size(); ++i) {
    EXPECT_EQ(want.as_rollups[i].asn, got.as_rollups[i].asn);
    EXPECT_EQ(want.as_rollups[i].country, got.as_rollups[i].country);
    EXPECT_EQ(want.as_rollups[i].as_name, got.as_rollups[i].as_name);
    EXPECT_EQ(want.as_rollups[i].observations, got.as_rollups[i].observations);
    EXPECT_EQ(want.as_rollups[i].devices, got.as_rollups[i].devices);
  }

  ASSERT_EQ(want.window_snapshots.size(), got.window_snapshots.size());
  for (std::size_t w = 0; w < want.window_snapshots.size(); ++w) {
    EXPECT_EQ(want.window_snapshots[w].map(), got.window_snapshots[w].map());
  }
}

}  // namespace scent::serve::test
