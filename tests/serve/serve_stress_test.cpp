// Reader/writer stress for the epoch-slot publication rail — the suite
// the TSan leg of scripts/check.sh runs (`ctest -R '^(Engine|Pipeline|Serve)'`
// under -fsanitize=thread). One writer publishes enough versions to lap
// the 8-slot ring many times while reader threads continuously pin the
// current version, run derive reports against it, and deliberately hold
// old versions across publishes (forcing the writer down the
// drain-readers-then-recycle path). Invariants: versions are monotonic
// per reader, a pinned version's contents never change, and nothing
// tears — TSan proves the memory-ordering argument, the assertions prove
// the protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "analysis/derive.h"
#include "analysis/input.h"
#include "serve/serve_table.h"

#include "serve_test_util.h"

namespace scent::serve {
namespace {

using test::append_day;
using test::kTsan;
using test::make_bgp;

TEST(ServeStress, ConcurrentReadersNeverTearAcrossRingLaps) {
  const std::size_t publishes = kTsan ? 48 : 96;
  const unsigned reader_count = 4;
  const std::size_t rows_per_day = kTsan ? 120 : 250;

  const routing::BgpTable bgp = make_bgp();
  ServeOptions options;
  options.bgp = &bgp;
  ServeTable table{options};

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  readers.reserve(reader_count);
  for (unsigned t = 0; t < reader_count; ++t) {
    readers.emplace_back([&table, &done, &reads] {
      std::uint64_t last_version = 0;
      std::uint64_t local_reads = 0;
      // Held versions: keep every 8th alive so slot recycling overlaps
      // live pins and retired-but-referenced versions coexist.
      std::vector<std::shared_ptr<const TableVersion>> held;
      while (!done.load(std::memory_order_acquire)) {
        const auto version = table.current();
        if (version == nullptr) continue;
        ++local_reads;
        // Monotonic: a reader can never observe the epoch going back.
        ASSERT_GE(version->version, last_version);
        last_version = version->version;
        // Internal consistency of the pinned version: the row counters
        // and the device table were built by the same apply.
        ASSERT_GE(version->table.rows_scanned, version->delta_rows);
        ASSERT_GE(version->table.rows_scanned, version->table.eui_rows);
        (void)analysis::pool_median(*version);
        if (!version->table.devices.empty()) {
          (void)analysis::allocation_length_for(
              *version, version->table.devices.begin()->first);
        }
        if (version->version % 8 == 0 &&
            (held.empty() || held.back()->version != version->version)) {
          held.push_back(version);
        }
      }
      // Held versions stayed frozen: version numbers still ascend and
      // each one's counters still agree after every ring lap.
      for (std::size_t i = 1; i < held.size(); ++i) {
        ASSERT_GT(held[i]->version, held[i - 1]->version);
        ASSERT_GE(held[i]->table.rows_scanned,
                  held[i - 1]->table.rows_scanned);
      }
      reads.fetch_add(local_reads, std::memory_order_relaxed);
    });
  }

  core::ObservationStore store;
  for (std::size_t p = 0; p < publishes; ++p) {
    const std::size_t begin = store.size();
    append_day(store, 0x57E55, static_cast<std::int64_t>(p), rows_per_day);
    table.apply(analysis::StoreInput{store, begin, store.size()},
                static_cast<std::int64_t>(p));
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(table.versions_published(), publishes);
  EXPECT_EQ(table.reads(), reads.load());
  const auto final_version = table.current();
  ASSERT_NE(final_version, nullptr);
  EXPECT_EQ(final_version->version, publishes);
  EXPECT_EQ(final_version->table.rows_scanned, store.size());
}

TEST(ServeStress, ReadersDuringConcurrentDeltaScans) {
  // The writer runs sharded delta scans (threads > 1) while readers pin
  // and query — the engine's scan threads and the rail's reader threads
  // coexist in one process, which is exactly the serve_tracker shape.
  const std::size_t publishes = kTsan ? 12 : 24;
  const routing::BgpTable bgp = make_bgp();
  ServeOptions options;
  options.bgp = &bgp;
  options.threads = 4;
  options.oversubscribe = true;
  ServeTable table{options};

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (unsigned t = 0; t < 2; ++t) {
    readers.emplace_back([&table, &done] {
      while (!done.load(std::memory_order_acquire)) {
        const auto version = table.current();
        if (version == nullptr) continue;
        (void)analysis::allocation_median(*version);
        (void)analysis::sightings_of(
            *version, version->table.devices.empty()
                          ? net::MacAddress{}
                          : version->table.devices.begin()->first);
      }
    });
  }

  core::ObservationStore store;
  for (std::size_t p = 0; p < publishes; ++p) {
    const std::size_t begin = store.size();
    append_day(store, 0x5CA2, static_cast<std::int64_t>(p),
               kTsan ? 200 : 400);
    table.apply(analysis::StoreInput{store, begin, store.size()},
                static_cast<std::int64_t>(p));
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(table.versions_published(), publishes);
}

}  // namespace
}  // namespace scent::serve
