// Engine trace instrumentation suite (TSan leg: every TEST name here
// starts with "Engine" so scripts/check.sh's `ctest -R '^Engine'` runs it
// under -fsanitize=thread).
//
// Two properties of §5h:
//   * Multi-shard recording is race-free: each shard writes only its own
//     ring, the collector drains on the driver thread after the join.
//   * The virtual-timestamp event stream — (name, type, virtual_us,
//     value) concatenated in shard drain order — is bit-identical at any
//     thread count, provided no ring overflowed.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "core/observation.h"
#include "core/sweep_ingest.h"
#include "engine/sweep.h"
#include "probe/prober.h"
#include "sim/scenario.h"
#include "trace/recorder.h"

namespace scent::engine {
namespace {

probe::ProberOptions fast_options() {
  probe::ProberOptions options;
  options.wire_mode = false;
  options.packets_per_second = 1000000;
  return options;
}

std::vector<SweepUnit> pool_units(const sim::PaperWorld& world,
                                  std::size_t count, unsigned sub_length) {
  const auto& pool = world.internet.provider(world.versatel).pools()[0];
  std::vector<SweepUnit> units;
  for (std::uint64_t i = 0; i < count; ++i) {
    const net::Prefix p48{
        pool.config().prefix.subnet(48, net::Uint128{i % 4}).base(), 48};
    units.push_back({p48, sub_length, 0x7ACE + i});
  }
  return units;
}

/// The determinism contract's comparison key: everything except wall_ns.
using VirtualEvent =
    std::tuple<std::string, trace::EventType, std::int64_t, std::int64_t>;

/// Concatenates the virtual streams of every lane whose name starts with
/// `prefix`, in collector (== shard drain) order.
std::vector<VirtualEvent> virtual_stream(const trace::TraceCollector& collector,
                                         std::string_view prefix) {
  std::vector<VirtualEvent> out;
  for (const auto& lane : collector.lanes()) {
    if (lane.name.rfind(prefix, 0) != 0) continue;
    for (const auto& e : lane.events) {
      out.emplace_back(std::string{e.name}, e.type, e.virtual_us, e.value);
    }
  }
  return out;
}

/// One traced sweep at the given shard count; oversubscribed so low-core
/// CI still runs genuinely concurrent shards.
trace::TraceCollector traced_sweep(unsigned threads) {
  sim::PaperWorld world = sim::make_tiny_world(0x7E57, 32);
  const auto units = pool_units(world, 12, 56);  // 12 units x 256 probes

  SweepOptions options;
  options.threads = threads;
  options.oversubscribe = true;
  // 12 units x 2 events (+1 counter each) fits any shard's ring with room
  // to spare: the contract only holds for drop-free captures.
  trace::TraceCollector collector{1 << 10};

  options.trace = &collector;
  sim::VirtualClock clock{sim::hours(12)};
  core::ObservationStore store;
  core::sweep_into_store(world.internet, clock, units, fast_options(),
                         options, store);
  EXPECT_GT(store.size(), 0u);
  EXPECT_EQ(collector.total_dropped(), 0u);
  return collector;
}

TEST(EngineTraceDeterminism, VirtualStreamIsBitIdenticalAtAnyThreadCount) {
  const trace::TraceCollector serial = traced_sweep(1);
  const auto serial_sweep = virtual_stream(serial, "sweep shard");
  const auto serial_ingest = virtual_stream(serial, "ingest shard");
  ASSERT_FALSE(serial_sweep.empty());
  ASSERT_FALSE(serial_ingest.empty());

  for (const unsigned threads : {2u, 4u, 8u}) {
    const trace::TraceCollector sharded = traced_sweep(threads);
    EXPECT_EQ(virtual_stream(sharded, "sweep shard"), serial_sweep)
        << threads << " threads";
    EXPECT_EQ(virtual_stream(sharded, "ingest shard"), serial_ingest)
        << threads << " threads";
  }
}

TEST(EngineTraceDeterminism, SweepLanesCarryPerUnitBeginEndAndCounters) {
  const trace::TraceCollector collector = traced_sweep(4);
  std::size_t begins = 0, ends = 0, counters = 0;
  for (const auto& [name, type, virtual_us, value] :
       virtual_stream(collector, "sweep shard")) {
    if (type == trace::EventType::kBegin) ++begins;
    if (type == trace::EventType::kEnd) ++ends;
    if (type == trace::EventType::kCounter) {
      ++counters;
      EXPECT_EQ(name, "sweep.responses");
      EXPECT_GE(value, 0);
    }
  }
  EXPECT_EQ(begins, 12u);  // one pair per unit
  EXPECT_EQ(ends, 12u);
  EXPECT_EQ(counters, 12u);
}

TEST(EngineTraceStress, ConcurrentShardRecordingIsRaceFree) {
  // TSan target: repeated heavily-oversubscribed traced sweeps. Shard
  // workers record concurrently into their own rings while the driver
  // stays off them until the post-join drain; any cross-thread touch is a
  // data race this test exists to surface.
  for (int round = 0; round < 3; ++round) {
    const trace::TraceCollector collector = traced_sweep(8);
    EXPECT_GT(collector.total_events(), 0u);
  }
}

TEST(EngineTraceStress, TinyRingsOverflowWithoutCorruption) {
  // Force constant wraparound in every shard ring: events drop (and are
  // counted) but the drained streams stay well-formed.
  sim::PaperWorld world = sim::make_tiny_world(0x0F10, 32);
  const auto units = pool_units(world, 12, 56);
  SweepOptions options;
  options.threads = 8;
  options.oversubscribe = true;
  trace::TraceCollector collector{2};  // 2-slot rings: guaranteed overflow
  options.trace = &collector;
  sim::VirtualClock clock{sim::hours(12)};
  core::ObservationStore store;
  core::sweep_into_store(world.internet, clock, units, fast_options(),
                         options, store);
  EXPECT_GT(collector.total_dropped(), 0u);
  for (const auto& lane : collector.lanes()) {
    // Each lane is one 2-slot ring drained once.
    EXPECT_LE(lane.events.size(), 2u) << lane.name;
    for (const auto& e : lane.events) {
      EXPECT_NE(e.name, nullptr);
    }
  }
}

}  // namespace
}  // namespace scent::engine
