// Property suite for the fused analysis engine's determinism contract:
// the merged AggregateTable — device order, every span, every per-AS
// sub-aggregate, day bitsets, sighting lists, window snapshots — must be
// bit-identical at ANY thread count, and identical whether the rows come
// from the in-memory columnar store or a persisted snapshot chain.
//
// Matrix: {1,2,4,8} threads x 3 seeds x 2 corpus shapes (a stable
// "paper"-style world and a churny multi-AS one). Under ThreadSanitizer
// the matrix shrinks but still runs genuinely multi-shard.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "analysis/derive.h"
#include "analysis/engine.h"
#include "analysis/input.h"
#include "core/observation.h"
#include "corpus/snapshot.h"
#include "netbase/eui64.h"
#include "routing/bgp_table.h"
#include "sim/rng.h"
#include "sim/sim_time.h"

namespace scent::analysis {
namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

enum class Shape { kPaper, kChurn };

/// A BGP table with nested announcements (the /48 shadows part of the
/// first /32) plus deliberately unannounced space, so attribution hits
/// the cache, the more-specific path, and the null path.
routing::BgpTable make_bgp() {
  routing::BgpTable bgp;
  bgp.announce({*net::Prefix::parse("2001:db8::/32"), 65001, "DE", "RotorDE"});
  bgp.announce(
      {*net::Prefix::parse("2001:db8:4400::/40"), 65003, "DE", "CarveOut"});
  bgp.announce({*net::Prefix::parse("2003:e200::/32"), 65002, "VN", "StatVN"});
  return bgp;
}

/// Synthetic observation corpus. The paper shape keeps each device inside
/// one AS with daily /64 movement; the churn shape adds devices seen in
/// several ASes (pathology fodder), privacy-addressed rows, repeated
/// <day, network> sightings and rows outside every announcement.
core::ObservationStore make_corpus(Shape shape, std::uint64_t seed,
                                   std::size_t rows) {
  sim::Rng rng{seed};
  core::ObservationStore store;
  const std::uint64_t as_base[3] = {0x20010db800000000ULL,
                                    0x20010db844000000ULL,
                                    0x2003e20000000000ULL};
  for (std::size_t i = 0; i < rows; ++i) {
    const std::uint64_t device = rng.below(40);
    const net::MacAddress mac{0x3810d5000000ULL + device};
    // Paper shape pins a device to one AS; churn lets a third roam.
    std::uint64_t as_pick = device % 3;
    if (shape == Shape::kChurn && device % 3 == 0) as_pick = rng.below(3);
    const std::int64_t day = static_cast<std::int64_t>(rng.below(10));
    const std::uint64_t network =
        as_base[as_pick] | ((device * 7 + static_cast<std::uint64_t>(day)) %
                            256) << 8;

    core::Observation obs;
    obs.target = net::Ipv6Address{network, 0xbeef0000ULL + i};
    if (shape == Shape::kChurn && rng.chance(0.15)) {
      // Privacy-addressed / non-EUI responses and unrouted space.
      const std::uint64_t net2 =
          rng.chance(0.5) ? network : 0x2a00000000000000ULL | (device << 8);
      obs.response = net::Ipv6Address{net2, rng.next() | 0x0400000000000000ULL};
    } else {
      obs.response = net::Ipv6Address{network, net::mac_to_eui64(mac)};
    }
    obs.type = wire::Icmpv6Type::kEchoReply;
    obs.code = 0;
    obs.time = sim::days(day) + static_cast<std::int64_t>(i % 1000);
    store.add(obs);
  }
  return store;
}

void expect_same_table(const AggregateTable& want, const AggregateTable& got) {
  EXPECT_EQ(want.rows_scanned, got.rows_scanned);
  EXPECT_EQ(want.eui_rows, got.eui_rows);
  EXPECT_EQ(want.failed_files, got.failed_files);

  ASSERT_EQ(want.devices.size(), got.devices.size());
  for (std::size_t i = 0; i < want.devices.size(); ++i) {
    const auto& [mac_a, dev_a] = want.devices.begin()[i];
    const auto& [mac_b, dev_b] = got.devices.begin()[i];
    ASSERT_EQ(mac_a, mac_b) << "device slot " << i;
    EXPECT_EQ(dev_a.oui, dev_b.oui);
    EXPECT_EQ(dev_a.observations, dev_b.observations);
    EXPECT_EQ(dev_a.target_lo, dev_b.target_lo);
    EXPECT_EQ(dev_a.target_hi, dev_b.target_hi);
    EXPECT_EQ(dev_a.response_lo, dev_b.response_lo);
    EXPECT_EQ(dev_a.response_hi, dev_b.response_hi);
    EXPECT_EQ(dev_a.first_day, dev_b.first_day);
    EXPECT_EQ(dev_a.last_day, dev_b.last_day);
    EXPECT_EQ(dev_a.day_bits, dev_b.day_bits);
    ASSERT_EQ(dev_a.per_as.size(), dev_b.per_as.size()) << mac_a.to_string();
    for (std::size_t k = 0; k < dev_a.per_as.size(); ++k) {
      const PerAsSpan& a = dev_a.per_as[k];
      const PerAsSpan& b = dev_b.per_as[k];
      EXPECT_EQ(a.asn, b.asn);
      EXPECT_EQ(a.ad, b.ad);  // both runs attribute against the same table
      EXPECT_EQ(a.target_lo, b.target_lo);
      EXPECT_EQ(a.target_hi, b.target_hi);
      EXPECT_EQ(a.response_lo, b.response_lo);
      EXPECT_EQ(a.response_hi, b.response_hi);
      EXPECT_EQ(a.observations, b.observations);
      EXPECT_EQ(a.days, b.days);
    }
    ASSERT_EQ(dev_a.sightings.size(), dev_b.sightings.size());
    for (std::size_t k = 0; k < dev_a.sightings.size(); ++k) {
      EXPECT_EQ(dev_a.sightings[k].day, dev_b.sightings[k].day);
      EXPECT_EQ(dev_a.sightings[k].network, dev_b.sightings[k].network);
    }
  }

  ASSERT_EQ(want.as_rollups.size(), got.as_rollups.size());
  for (std::size_t i = 0; i < want.as_rollups.size(); ++i) {
    EXPECT_EQ(want.as_rollups[i].asn, got.as_rollups[i].asn);
    EXPECT_EQ(want.as_rollups[i].country, got.as_rollups[i].country);
    EXPECT_EQ(want.as_rollups[i].as_name, got.as_rollups[i].as_name);
    EXPECT_EQ(want.as_rollups[i].observations, got.as_rollups[i].observations);
    EXPECT_EQ(want.as_rollups[i].devices, got.as_rollups[i].devices);
  }

  ASSERT_EQ(want.window_snapshots.size(), got.window_snapshots.size());
  for (std::size_t w = 0; w < want.window_snapshots.size(); ++w) {
    EXPECT_EQ(want.window_snapshots[w].map(), got.window_snapshots[w].map());
  }
}

TEST(EngineAnalysisEquivalence, ShardedPassIsBitIdenticalToSerial) {
  const std::vector<std::uint64_t> seeds =
      kTsan ? std::vector<std::uint64_t>{0xA1}
            : std::vector<std::uint64_t>{0xA1, 0xA2, 0xA3};
  const std::vector<unsigned> thread_counts =
      kTsan ? std::vector<unsigned>{2, 8}
            : std::vector<unsigned>{1, 2, 4, 8};
  const std::size_t rows = kTsan ? 2000 : 6000;

  const routing::BgpTable bgp = make_bgp();
  for (const Shape shape : {Shape::kPaper, Shape::kChurn}) {
    for (const std::uint64_t seed : seeds) {
      SCOPED_TRACE(testing::Message()
                   << (shape == Shape::kPaper ? "paper" : "churn")
                   << " seed=0x" << std::hex << seed);
      const core::ObservationStore store = make_corpus(shape, seed, rows);

      AnalysisOptions options;
      options.threads = 1;
      // Windows exercise the partition-straddling snapshot merge too.
      options.windows = {RowWindow{0, rows / 2},
                         RowWindow{rows / 3, rows - 7}};
      const AggregateTable reference = analyze(store, &bgp, options);
      ASSERT_GT(reference.devices.size(), 0u);
      ASSERT_GT(reference.as_rollups.size(), 0u);

      for (const unsigned threads : thread_counts) {
        SCOPED_TRACE(testing::Message() << "threads=" << threads);
        AnalysisOptions parallel = options;
        parallel.threads = threads;
        parallel.oversubscribe = true;  // real shards even on 1-core CI
        const AggregateTable table = analyze(store, &bgp, parallel);
        expect_same_table(reference, table);

        // Derived reports are functions of the table; spot-check the full
        // stack anyway so a table-equal-but-derive-order bug cannot hide.
        EXPECT_EQ(allocation_medians_by_as(reference),
                  allocation_medians_by_as(table));
        EXPECT_EQ(allocation_lengths(reference), allocation_lengths(table));
        EXPECT_EQ(pool_lengths(reference), pool_lengths(table));
      }
    }
  }
}

struct TempDir {
  std::string path;
  std::vector<std::string> files;
  TempDir() { path = ::testing::TempDir(); }
  ~TempDir() {
    for (const auto& f : files) std::remove(f.c_str());
  }
  std::string next(const char* tag, std::size_t i) {
    files.push_back(path + "/scent_analysis_" + tag + "_" +
                    std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
                    "_" + std::to_string(i) + ".snap");
    return files.back();
  }
};

TEST(EngineAnalysisEquivalence, SnapshotChainMatchesInMemoryStore) {
  const routing::BgpTable bgp = make_bgp();
  const std::size_t rows = kTsan ? 1500 : 4000;
  const core::ObservationStore store =
      make_corpus(Shape::kChurn, 0xC4A1, rows);

  // Persist the store as an uneven three-file chain (shard boundaries will
  // straddle files at most thread counts).
  TempDir dir;
  std::vector<std::string> paths;
  const std::size_t cuts[4] = {0, rows / 5, (rows * 2) / 3, rows};
  for (std::size_t f = 0; f < 3; ++f) {
    corpus::SnapshotWriter writer;
    writer.append(store.view(cuts[f], cuts[f + 1]));
    paths.push_back(dir.next("chain", f));
    ASSERT_TRUE(writer.write(paths.back()));
  }

  for (const unsigned threads : {1u, 3u, 8u}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    AnalysisOptions options;
    options.threads = threads;
    options.oversubscribe = true;
    const AggregateTable from_store = analyze(store, &bgp, options);
    const ChainInput chain{paths};
    ASSERT_EQ(chain.rows(), rows);
    const AggregateTable from_chain = analyze(chain, &bgp, options);
    expect_same_table(from_store, from_chain);
  }
}

TEST(EngineAnalysisEquivalence, ChainCountsUnreadableFilesAndAnalyzesRest) {
  const routing::BgpTable bgp = make_bgp();
  const core::ObservationStore store =
      make_corpus(Shape::kPaper, 0xF11E, 900);

  TempDir dir;
  corpus::SnapshotWriter writer;
  writer.append(store);
  const std::string good = dir.next("good", 0);
  ASSERT_TRUE(writer.write(good));

  // A missing path and the good file: the chain analyzes the good rows and
  // reports one failed file — legacy sightings_from_snapshots semantics.
  const ChainInput chain{{dir.path + "/scent_analysis_nonexistent.snap",
                          good}};
  EXPECT_EQ(chain.rows(), store.size());
  const AggregateTable from_chain = analyze(chain, &bgp, {});
  EXPECT_EQ(from_chain.failed_files, 1u);

  const AggregateTable from_store = analyze(store, &bgp, {});
  ASSERT_EQ(from_chain.devices.size(), from_store.devices.size());
  EXPECT_EQ(from_chain.rows_scanned, from_store.rows_scanned);
}

// DaySet is the one aggregate component whose interesting paths — window
// rebase when an earlier day arrives, spill past the 64-day window, spill
// entries pushed out during a rebase — need day spans far wider than the
// simulated worlds above produce. Differential-test it against std::set
// over a ±200-day range, and pin down the canonicalization claim the
// merge contract leans on: equal sets are equal bytes, whatever the
// insertion or merge order.
TEST(EngineAnalysisDaySetModel, MatchesStdSetAcrossWindowAndSpill) {
  sim::Rng rng{0x0DA75E7ULL};
  for (int round = 0; round < 50; ++round) {
    DaySet set;
    std::set<std::int64_t> model;
    const int inserts = 1 + static_cast<int>(rng.below(120));
    for (int i = 0; i < inserts; ++i) {
      const std::int64_t day =
          static_cast<std::int64_t>(rng.below(401)) - 200;
      set.note(day);
      model.insert(day);
    }
    EXPECT_EQ(set.count(), model.size());
    EXPECT_EQ(set.values(),
              std::vector<std::int64_t>(model.begin(), model.end()));
    EXPECT_EQ(set.first(), *model.begin());
    EXPECT_EQ(set.last(), *model.rbegin());
  }
}

TEST(EngineAnalysisDaySetModel, CanonicalAcrossInsertionAndMergeOrder) {
  sim::Rng rng{0xCA0041CA1ULL};
  for (int round = 0; round < 50; ++round) {
    std::vector<std::int64_t> days;
    const int inserts = 2 + static_cast<int>(rng.below(100));
    for (int i = 0; i < inserts; ++i) {
      days.push_back(static_cast<std::int64_t>(rng.below(401)) - 200);
    }

    DaySet forward;
    for (const std::int64_t day : days) forward.note(day);
    DaySet backward;
    for (auto it = days.rbegin(); it != days.rend(); ++it) {
      backward.note(*it);
    }
    EXPECT_EQ(forward, backward);

    // Split anywhere, build the halves independently, merge either way
    // around: still the same bytes — the shard-merge property.
    const std::size_t cut = rng.below(days.size() + 1);
    DaySet lo;
    DaySet hi;
    for (std::size_t i = 0; i < days.size(); ++i) {
      (i < cut ? lo : hi).note(days[i]);
    }
    DaySet lo_first = lo;
    lo_first.merge(hi);
    DaySet hi_first = hi;
    hi_first.merge(lo);
    EXPECT_EQ(lo_first, forward);
    EXPECT_EQ(hi_first, forward);
    EXPECT_EQ(lo_first.values(), forward.values());
  }
}

}  // namespace
}  // namespace scent::analysis
