// Stress the telemetry Registry's thread-safety contract from inside the
// engine: instruments are created up front (creation is NOT thread-safe),
// then every shard hammers the same Counter/Gauge objects through a shared
// UnitSink while the executor also drives real probe traffic. Totals must
// come out exact — relaxed atomic increments lose nothing — and the TSan
// leg of scripts/check.sh runs this under -fsanitize=thread to catch any
// unsynchronized access the assertions can't see.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "engine/executor.h"
#include "engine/sweep.h"
#include "sim/scenario.h"
#include "telemetry/metrics.h"

namespace scent::engine {
namespace {

class SharedRegistrySink final : public UnitSink {
 public:
  SharedRegistrySink(telemetry::Counter& results, telemetry::Counter& units,
                     telemetry::Gauge& last_unit)
      : results_(results), units_(units), last_unit_(last_unit) {}

  void on_results(std::size_t unit,
                  std::span<const probe::ProbeResult> batch) override {
    // Many small adds per batch, maximizing interleaving pressure.
    for (std::size_t i = 0; i < batch.size(); ++i) results_.add(1);
    last_unit_.set_u64(unit);
  }
  void on_unit_end(std::size_t) override { units_.add(1); }

 private:
  telemetry::Counter& results_;
  telemetry::Counter& units_;
  telemetry::Gauge& last_unit_;
};

TEST(EngineRegistryStress, SharedCountersStayExactUnderAllShards) {
  sim::PaperWorld world = sim::make_tiny_world(0x57E5, 64);
  sim::VirtualClock clock;

  const auto& pool = world.internet.provider(world.versatel).pools()[0];
  std::vector<SweepUnit> units;
  constexpr std::size_t kUnits = 64;
  for (std::uint64_t i = 0; i < kUnits; ++i) {
    const net::Prefix p48{
        pool.config().prefix.subnet(48, net::Uint128{i % 4}).base(), 48};
    units.push_back({p48, 56, 0xAB + i});
  }

  probe::ProberOptions prober_options;
  prober_options.wire_mode = false;
  prober_options.packets_per_second = 1000000;

  // One registry shared by every shard. All instruments exist before any
  // worker starts; after that, concurrent add/set is the supported mode.
  telemetry::Registry registry;
  telemetry::Counter& results = registry.counter("stress.results");
  telemetry::Counter& unit_count = registry.counter("stress.units");
  telemetry::Gauge& last_unit = registry.gauge("stress.last_unit");
  // The executor itself also merges shard-local prober registries into
  // this one after the join; pre-create those too so the merge path and
  // the live-shared path coexist.
  registry.counter("probe.sent");
  registry.counter("probe.received");

  SweepOptions options;
  options.threads = 8;
  options.oversubscribe = true;  // exact shard count even on 1-core CI
  options.merge_registry = &registry;

  SharedRegistrySink shared_sink{results, unit_count, last_unit};
  const SweepReport report = run_sharded_sweep(
      world.internet, clock, units, prober_options, options,
      [&shared_sink](unsigned) { return &shared_sink; });

  EXPECT_EQ(report.threads_used, 8u);
  EXPECT_EQ(unit_count.value(), kUnits);
  EXPECT_EQ(results.value(), report.counters.received);
  EXPECT_GT(results.value(), 0u);
  EXPECT_LT(last_unit.value(), static_cast<std::int64_t>(kUnits));
  EXPECT_EQ(registry.counter("probe.sent").value(), report.counters.sent);
  EXPECT_EQ(registry.counter("probe.received").value(),
            report.counters.received);
}

TEST(EngineRegistryStress, MergeCountersFromAccumulatesAcrossRegistries) {
  telemetry::Registry a;
  telemetry::Registry b;
  a.counter("x").add(3);
  b.counter("x").add(4);
  b.counter("y").add(9);
  a.merge_counters_from(b);
  EXPECT_EQ(a.counter("x").value(), 7u);
  EXPECT_EQ(a.counter("y").value(), 9u);
}

}  // namespace
}  // namespace scent::engine
