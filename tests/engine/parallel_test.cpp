// Tests for the shared shard-runner primitives (engine/parallel.h): the
// hardware clamp behind every executor's serial fallback, the contiguous
// row partition, and run_shards' inline-at-one-shard + exception contract.
#include "engine/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace scent::engine {
namespace {

TEST(EngineParallel, EffectiveThreadsClampsToHardwareUnlessOversubscribed) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  // A request within the machine passes through untouched.
  EXPECT_EQ(effective_threads(1, false), 1u);
  EXPECT_EQ(effective_threads(hw, false), hw);

  // Beyond the machine: clamped by default (extra shards only add
  // partition/spawn/merge overhead when they time-slice the same cores),
  // honored when the caller opts into oversubscription.
  EXPECT_EQ(effective_threads(hw + 5, false), hw);
  EXPECT_EQ(effective_threads(hw + 5, true), hw + 5);

  // 0 = hardware concurrency, under both policies.
  EXPECT_EQ(effective_threads(0, false), hw);
  EXPECT_EQ(effective_threads(0, true), hw);
}

TEST(EngineParallel, ShardRowsTileTheRangeContiguously) {
  for (const std::size_t total :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{64},
        std::size_t{1000}, std::size_t{1000003}}) {
    for (const unsigned shards : {1u, 2u, 3u, 8u, 13u}) {
      std::size_t expect_begin = 0;
      for (unsigned s = 0; s < shards; ++s) {
        const RowRange range = shard_rows(total, shards, s);
        EXPECT_EQ(range.begin, expect_begin);
        EXPECT_LE(range.begin, range.end);
        // Balanced to within one row.
        EXPECT_LE(range.end - range.begin, total / shards + 1);
        expect_begin = range.end;
      }
      EXPECT_EQ(expect_begin, total);
    }
  }
}

TEST(EngineParallel, SingleShardRunsInlineOnTheCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  run_shards(1, [&](unsigned s) {
    EXPECT_EQ(s, 0u);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(EngineParallel, EveryShardRunsExactlyOnce) {
  constexpr unsigned kShards = 6;
  std::vector<std::atomic<int>> hits(kShards);
  run_shards(kShards, [&](unsigned s) { hits[s].fetch_add(1); });
  for (unsigned s = 0; s < kShards; ++s) EXPECT_EQ(hits[s].load(), 1);
}

TEST(EngineParallel, LowestShardExceptionWinsAfterAllJoin) {
  std::atomic<int> completed{0};
  try {
    run_shards(4, [&](unsigned s) {
      if (s == 1) throw std::runtime_error("shard one");
      if (s == 3) throw std::runtime_error("shard three");
      completed.fetch_add(1);
    });
    FAIL() << "expected a shard exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard one");
  }
  // The non-throwing shards were joined, not abandoned.
  EXPECT_EQ(completed.load(), 2);
}

}  // namespace
}  // namespace scent::engine
