// Tests for the engine's sweep plan and sharded executor mechanics:
// partitioning, scheduling, batching, counter/stat/registry aggregation,
// and failure propagation. Serial/parallel corpus equivalence has its own
// property suite (equivalence_property_test.cpp).
#include "engine/executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/sweep_ingest.h"
#include "engine/sweep.h"
#include "probe/target_generator.h"
#include "sim/scenario.h"

namespace scent::engine {
namespace {

using namespace scent;

probe::ProberOptions fast_options() {
  probe::ProberOptions options;
  options.wire_mode = false;
  options.packets_per_second = 1000000;
  return options;
}

/// Sweep units over the tiny world's rotating /46 pool: `count` /48s at the
/// given granularity.
std::vector<SweepUnit> pool_units(const sim::PaperWorld& world,
                                  std::size_t count, unsigned sub_length) {
  const auto& pool = world.internet.provider(world.versatel).pools()[0];
  std::vector<SweepUnit> units;
  for (std::uint64_t i = 0; i < count; ++i) {
    const net::Prefix p48{
        pool.config().prefix.subnet(48, net::Uint128{i % 4}).base(), 48};
    units.push_back({p48, sub_length, 0xBEEF + i});
  }
  return units;
}

TEST(EngineSweepPlan, SchedulesUnitsAtSerialStartTimes) {
  sim::PaperWorld world = sim::make_tiny_world(0xE1, 16);
  const auto units = pool_units(world, 3, 56);  // 3 units x 256 probes

  const probe::ProberOptions options = fast_options();
  const sim::TimePoint t0 = sim::hours(2);
  const SweepPlan plan{units, options, t0, 2};

  const sim::Duration gap =
      sim::kSecond / static_cast<sim::Duration>(options.packets_per_second);
  ASSERT_EQ(plan.unit_count(), 3u);
  EXPECT_EQ(plan.total_probes(), 3u * 256u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(plan.unit_probes(k), 256u);
    EXPECT_EQ(plan.unit_start(k),
              t0 + static_cast<sim::Duration>(k * 256) * gap);
  }
  EXPECT_EQ(plan.end_time(),
            t0 + static_cast<sim::Duration>(3 * 256) * gap);
}

TEST(EngineSweepPlan, PartitionIsContiguousCompleteAndBalanced) {
  sim::PaperWorld world = sim::make_tiny_world(0xE2, 16);
  const auto units = pool_units(world, 13, 52);  // 13 units x 16 probes

  for (unsigned shards : {1u, 2u, 4u, 8u, 32u}) {
    const SweepPlan plan{units, fast_options(), 0, shards};
    ASSERT_EQ(plan.shard_count(), shards);
    // Shards tile [0, unit_count) in order, without gaps or overlap.
    std::size_t expected_first = 0;
    std::uint64_t max_probes = 0;
    for (unsigned s = 0; s < shards; ++s) {
      EXPECT_EQ(plan.shard_first(s), expected_first);
      EXPECT_LE(plan.shard_first(s), plan.shard_last(s));
      expected_first = plan.shard_last(s);
      max_probes = std::max(max_probes, plan.shard_probes(s));
    }
    EXPECT_EQ(expected_first, plan.unit_count());
    // Balanced to within one unit of the ideal share.
    EXPECT_LE(max_probes, plan.total_probes() / shards + plan.unit_probes(0));
  }
}

TEST(EngineSweepPlan, EmptyUnitListIsDegenerate) {
  const SweepPlan plan{{}, fast_options(), sim::hours(1), 4};
  EXPECT_EQ(plan.unit_count(), 0u);
  EXPECT_EQ(plan.total_probes(), 0u);
  EXPECT_EQ(plan.end_time(), sim::hours(1));
  for (unsigned s = 0; s < 4; ++s) {
    EXPECT_EQ(plan.shard_first(s), plan.shard_last(s));
  }
}

TEST(EngineExecutor, ResolveThreadsTreatsZeroAsHardware) {
  EXPECT_EQ(resolve_threads(3), 3u);
  EXPECT_GE(resolve_threads(0), 1u);
}

/// Records every delivery for ordering/bracketing assertions.
class RecordingSink final : public UnitSink {
 public:
  void on_unit_begin(std::size_t unit) override { begins.push_back(unit); }
  void on_results(std::size_t unit,
                  std::span<const probe::ProbeResult> batch) override {
    EXPECT_FALSE(batch.empty());
    EXPECT_LE(batch.size(), 256u);
    for (const auto& r : batch) results.emplace_back(unit, r);
  }
  void on_unit_end(std::size_t unit) override { ends.push_back(unit); }

  std::vector<std::size_t> begins;
  std::vector<std::size_t> ends;
  std::vector<std::pair<std::size_t, probe::ProbeResult>> results;
};

TEST(EngineExecutor, StreamsOrderedBatchesAndAggregates) {
  sim::PaperWorld world = sim::make_tiny_world(0xE3, 48);
  sim::VirtualClock clock{sim::hours(10)};
  const auto units = pool_units(world, 4, 56);

  const sim::Internet::Stats stats_before = world.internet.stats();

  SweepOptions options;
  options.threads = 2;
  options.oversubscribe = true;  // exact shard count even on 1-core CI
  std::vector<RecordingSink> sinks(2);
  const SweepReport report = run_sharded_sweep(
      world.internet, clock, units, fast_options(), options,
      [&sinks](unsigned shard) { return &sinks[shard]; });

  EXPECT_EQ(report.threads_used, 2u);
  ASSERT_EQ(report.units.size(), 4u);

  std::uint64_t sent = 0;
  std::uint64_t responded = 0;
  for (const auto& unit : report.units) {
    EXPECT_EQ(unit.sent, 256u);
    sent += unit.sent;
    responded += unit.responded;
  }
  EXPECT_EQ(report.counters.sent, sent);
  EXPECT_EQ(report.counters.received, responded);
  EXPECT_GT(responded, 0u);

  // The caller's clock stands at the serial schedule end.
  EXPECT_EQ(clock.now(), report.end);
  const sim::Duration gap = sim::kSecond / 1000000;
  EXPECT_EQ(report.end,
            report.start + static_cast<sim::Duration>(sent) * gap);

  // Internet stats absorbed every shard's traffic.
  EXPECT_EQ(world.internet.stats().probes_received,
            stats_before.probes_received + sent);
  EXPECT_EQ(world.internet.stats().responses_sent,
            stats_before.responses_sent + responded);

  // Each shard saw its units bracketed, in ascending order, and result
  // timestamps within each unit ascend (probe order preserved).
  std::uint64_t total_results = 0;
  for (const auto& sink : sinks) {
    EXPECT_TRUE(std::is_sorted(sink.begins.begin(), sink.begins.end()));
    EXPECT_EQ(sink.begins, sink.ends);
    sim::TimePoint last = -1;
    std::size_t last_unit = 0;
    for (const auto& [unit, r] : sink.results) {
      if (unit != last_unit) last = -1;
      EXPECT_GE(r.sent_at, last);
      last = r.sent_at;
      last_unit = unit;
    }
    total_results += sink.results.size();
  }
  EXPECT_EQ(total_results, responded);
}

TEST(EngineExecutor, MergesShardRegistriesIntoOne) {
  sim::PaperWorld world = sim::make_tiny_world(0xE4, 48);
  sim::VirtualClock clock{sim::hours(10)};
  const auto units = pool_units(world, 4, 56);

  telemetry::Registry registry;
  SweepOptions options;
  options.threads = 4;
  options.oversubscribe = true;
  options.merge_registry = &registry;

  core::ObservationStore store;
  const core::SweepIngest ingest = core::sweep_into_store(
      world.internet, clock, units, fast_options(), options, store);

  EXPECT_EQ(registry.counter("probe.sent").value(), ingest.counters.sent);
  EXPECT_EQ(registry.counter("probe.received").value(),
            ingest.counters.received);
  EXPECT_EQ(store.size(), ingest.counters.received);
}

TEST(EngineExecutor, SinkExceptionsPropagateAfterJoin) {
  sim::PaperWorld world = sim::make_tiny_world(0xE5, 48);
  sim::VirtualClock clock{sim::hours(10)};
  const auto units = pool_units(world, 4, 56);

  class ThrowingSink final : public UnitSink {
   public:
    void on_results(std::size_t,
                    std::span<const probe::ProbeResult>) override {
      throw std::runtime_error("sink failed");
    }
  };
  std::vector<ThrowingSink> sinks(2);

  SweepOptions options;
  options.threads = 2;
  options.oversubscribe = true;
  EXPECT_THROW(run_sharded_sweep(world.internet, clock, units,
                                 fast_options(), options,
                                 [&sinks](unsigned s) { return &sinks[s]; }),
               std::runtime_error);
}

TEST(EngineExecutor, IngestRangesSliceTheMergedStore) {
  sim::PaperWorld world = sim::make_tiny_world(0xE6, 48);
  sim::VirtualClock clock{sim::hours(10)};
  const auto units = pool_units(world, 6, 56);

  core::ObservationStore store;
  const core::SweepIngest ingest = core::sweep_into_store(
      world.internet, clock, units, fast_options(), SweepOptions{.threads = 3, .oversubscribe = true},
      store);

  ASSERT_EQ(ingest.units.size(), 6u);
  std::size_t expected_begin = 0;
  for (std::size_t u = 0; u < 6; ++u) {
    const auto& unit = ingest.units[u];
    // Ranges tile the store in unit order.
    EXPECT_EQ(unit.obs_begin, expected_begin);
    expected_begin = unit.obs_end;
    EXPECT_EQ(unit.obs_end - unit.obs_begin, unit.responded);
    // Every observation in the slice targets the unit's prefix.
    for (std::size_t i = unit.obs_begin; i < unit.obs_end; ++i) {
      EXPECT_TRUE(units[u].prefix.contains(store.all()[i].target));
    }
  }
  EXPECT_EQ(expected_begin, store.size());
}

}  // namespace
}  // namespace scent::engine
