// Property suite for the engine's determinism contract: the full
// bootstrap-funnel + campaign pipeline run through the sharded executor
// must produce a bit-identical corpus — every observation field, every
// derived prefix set, every funnel number — at ANY thread count. Each
// (scenario, seed, threads) cell builds a fresh world and is compared
// field-by-field against a cached threads=1 reference from an identical
// world.
//
// Under ThreadSanitizer the matrix shrinks (TSan runs ~15x slower) but
// still crosses both scenarios with real multi-threaded runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/bootstrap.h"
#include "core/campaign.h"
#include "core/observation.h"
#include "netbase/mac_address.h"
#include "netbase/prefix.h"
#include "probe/prober.h"
#include "sim/scenario.h"
#include "sim/sim_time.h"

namespace scent {
namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

enum class Scenario { kPaperWorld, kChurn };

const char* scenario_name(Scenario s) {
  return s == Scenario::kPaperWorld ? "paper_world" : "churn";
}

/// A fresh simulated Internet per run: equivalence must hold between two
/// *independently constructed* identical worlds, not merely two sweeps of
/// one world instance.
sim::Internet make_world(Scenario scenario, std::uint64_t seed) {
  if (scenario == Scenario::kPaperWorld) {
    sim::PaperWorldOptions options;
    options.seed = seed;
    options.tail_as_count = 2;
    options.scale = kTsan ? 0.04 : 0.08;
    options.devices_per_tail_pool = kTsan ? 12 : 24;
    options.versatel_pool_count = 2;
    options.tail_churn = 0.25;
    options.inject_pathologies = true;
    return std::move(sim::make_paper_world(options).internet);
  }

  // Churn scenario: a rotator and a static allocator whose customers join
  // and leave mid-campaign — the §4.3 false-positive source. Bounded
  // service intervals must not disturb determinism because activity is a
  // pure function of (device, t).
  sim::WorldBuilder builder{seed};
  {
    sim::ProviderSpec spec;
    spec.asn = 65101;
    spec.name = "ChurnRotator";
    spec.country = "DE";
    spec.advertisement = *net::Prefix::parse("2001:1111::/32");
    spec.vendors = {{net::Oui{0x3810d5}, 1.0}};
    sim::PoolSpec pool;
    pool.pool_length = 48;
    pool.allocation_length = 56;
    pool.rotation.kind = sim::RotationPolicy::Kind::kStride;
    pool.rotation.stride = 97;
    pool.device_count = 200;
    spec.pools = {pool};
    spec.eui64_fraction = 0.9;
    spec.churn_fraction = 0.35;
    builder.add_provider(spec);
  }
  {
    sim::ProviderSpec spec;
    spec.asn = 65102;
    spec.name = "ChurnStatic";
    spec.country = "VN";
    spec.advertisement = *net::Prefix::parse("2001:2222::/32");
    spec.vendors = {{net::Oui{0x98f428}, 1.0}};
    sim::PoolSpec pool;
    pool.pool_length = 48;
    pool.allocation_length = 60;
    pool.device_count = 1000;
    spec.pools = {pool};
    spec.eui64_fraction = 0.8;
    spec.churn_fraction = 0.5;
    builder.add_provider(spec);
  }
  return builder.take();
}

struct PipelineRun {
  core::BootstrapResult boot;
  core::CampaignResult campaign;
};

PipelineRun run_pipeline(Scenario scenario, std::uint64_t seed,
                         unsigned threads) {
  sim::Internet internet = make_world(scenario, seed);
  // 10:00 — outside the 00:00-06:00 rotation window, like a real campaign
  // (a bootstrap whose snapshots straddle mid-rotation churn is a
  // different experiment).
  sim::VirtualClock clock{sim::hours(10)};

  probe::ProberOptions prober_options;
  prober_options.wire_mode = false;
  prober_options.packets_per_second = 2000000;
  probe::Prober prober{internet, clock, prober_options};

  PipelineRun run;
  core::BootstrapOptions boot;
  boot.seed = seed ^ 0xF00D;
  boot.probes_per_48 = 4;
  boot.threads = threads;
  boot.oversubscribe = true;  // real multi-shard runs even on 1-core CI
  run.boot = core::run_bootstrap(internet, clock, prober, boot);

  core::CampaignOptions campaign;
  campaign.days = kTsan ? 2 : 3;
  campaign.seed = seed ^ 0xCA3B;
  campaign.threads = threads;
  campaign.oversubscribe = true;
  run.campaign = core::run_campaign(internet, clock, prober,
                                    run.boot.rotating_48s, campaign);
  return run;
}

/// Observation has no operator== (and padding forbids memcmp); compare
/// every field of every element, in order.
void expect_same_corpus(const core::ObservationStore& want,
                        const core::ObservationStore& got) {
  ASSERT_EQ(want.size(), got.size());
  const auto& a = want.all();
  const auto& b = got.all();
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].target, b[i].target) << "observation " << i;
    ASSERT_EQ(a[i].response, b[i].response) << "observation " << i;
    ASSERT_EQ(a[i].type, b[i].type) << "observation " << i;
    ASSERT_EQ(a[i].code, b[i].code) << "observation " << i;
    ASSERT_EQ(a[i].time, b[i].time) << "observation " << i;
  }
  EXPECT_EQ(want.unique_responses(), got.unique_responses());
  EXPECT_EQ(want.unique_eui64_responses(), got.unique_eui64_responses());
  EXPECT_EQ(want.unique_eui64_iids(), got.unique_eui64_iids());
}

void expect_same_run(const PipelineRun& want, const PipelineRun& got) {
  // Bootstrap: every derived prefix set...
  EXPECT_EQ(want.boot.seed_48s, got.boot.seed_48s);
  EXPECT_EQ(want.boot.seed_32s, got.boot.seed_32s);
  EXPECT_EQ(want.boot.expanded_48s, got.boot.expanded_48s);
  EXPECT_EQ(want.boot.high_density_48s, got.boot.high_density_48s);
  EXPECT_EQ(want.boot.low_density_48s, got.boot.low_density_48s);
  EXPECT_EQ(want.boot.unresponsive_48s, got.boot.unresponsive_48s);
  EXPECT_EQ(want.boot.rotating_48s, got.boot.rotating_48s);
  // ...every rotation verdict...
  ASSERT_EQ(want.boot.verdicts.size(), got.boot.verdicts.size());
  for (std::size_t i = 0; i < want.boot.verdicts.size(); ++i) {
    EXPECT_EQ(want.boot.verdicts[i].prefix, got.boot.verdicts[i].prefix);
    EXPECT_EQ(want.boot.verdicts[i].rotating, got.boot.verdicts[i].rotating);
    EXPECT_EQ(want.boot.verdicts[i].eui_targets,
              got.boot.verdicts[i].eui_targets);
    EXPECT_EQ(want.boot.verdicts[i].changed, got.boot.verdicts[i].changed);
  }
  // ...the funnel accounting...
  EXPECT_EQ(want.boot.probes_sent, got.boot.probes_sent);
  EXPECT_EQ(want.boot.total_addresses, got.boot.total_addresses);
  EXPECT_EQ(want.boot.eui64_addresses, got.boot.eui64_addresses);
  EXPECT_EQ(want.boot.unique_iids, got.boot.unique_iids);
  // ...and the observation corpus itself, byte for byte.
  expect_same_corpus(want.boot.observations, got.boot.observations);

  // Campaign: daily funnel, inferred allocations, corpus.
  EXPECT_EQ(want.campaign.probes_sent, got.campaign.probes_sent);
  EXPECT_EQ(want.campaign.responses, got.campaign.responses);
  EXPECT_EQ(want.campaign.allocation_length_by_as,
            got.campaign.allocation_length_by_as);
  ASSERT_EQ(want.campaign.daily.size(), got.campaign.daily.size());
  for (std::size_t d = 0; d < want.campaign.daily.size(); ++d) {
    EXPECT_EQ(want.campaign.daily[d].day, got.campaign.daily[d].day);
    EXPECT_EQ(want.campaign.daily[d].probes, got.campaign.daily[d].probes);
    EXPECT_EQ(want.campaign.daily[d].responses,
              got.campaign.daily[d].responses);
    EXPECT_EQ(want.campaign.daily[d].unique_eui64_iids,
              got.campaign.daily[d].unique_eui64_iids);
  }
  expect_same_corpus(want.campaign.observations, got.campaign.observations);
}

TEST(EngineEquivalence, ParallelPipelineIsBitIdenticalToSerial) {
  const std::vector<std::uint64_t> seeds =
      kTsan ? std::vector<std::uint64_t>{0x11}
            : std::vector<std::uint64_t>{0x11, 0x22, 0x33};
  const std::vector<unsigned> thread_counts =
      kTsan ? std::vector<unsigned>{2, 8}
            : std::vector<unsigned>{1, 2, 4, 8};

  for (const Scenario scenario : {Scenario::kPaperWorld, Scenario::kChurn}) {
    for (const std::uint64_t seed : seeds) {
      SCOPED_TRACE(testing::Message()
                   << scenario_name(scenario) << " seed=0x" << std::hex
                   << seed);
      const PipelineRun reference = run_pipeline(scenario, seed, 1);
      // The reference must itself be nontrivial, or equivalence is vacuous.
      ASSERT_FALSE(reference.boot.rotating_48s.empty());
      ASSERT_GT(reference.campaign.observations.size(), 0u);

      for (const unsigned threads : thread_counts) {
        SCOPED_TRACE(testing::Message() << "threads=" << threads);
        const PipelineRun parallel = run_pipeline(scenario, seed, threads);
        expect_same_run(reference, parallel);
      }
    }
  }
}

TEST(EngineEquivalence, HardwareThreadCountAlsoMatches) {
  // threads=0 resolves to hardware concurrency — whatever this host has
  // must land on the same corpus too.
  const PipelineRun reference =
      run_pipeline(Scenario::kChurn, 0x44, 1);
  const PipelineRun hardware =
      run_pipeline(Scenario::kChurn, 0x44, 0);
  expect_same_run(reference, hardware);
}

}  // namespace
}  // namespace scent
