// Tests for the shared example CLI (examples/example_util.h), pinning the
// --out-dir error contract: an out-dir that cannot be created must flip
// out_dir_ok and make require_out_dir() return nonzero, so examples exit
// loudly instead of silently writing nothing. The companion ctest entries
// (CliOutDirFailure.*, WILL_FAIL) hold each example binary to actually
// honoring it.

#include "example_util.h"

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace scent::examples {
namespace {

Cli parse_args(std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("test"));
  for (std::string& a : args) argv.push_back(a.data());
  return Cli::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliExamples, SharedFlagsParse) {
  const Cli cli = parse_args({"--threads=8", "--pipeline",
                              "--queue-capacity=4", "--snapshot-version=1",
                              "--trace-out=t.json"});
  EXPECT_EQ(cli.threads, 8u);
  EXPECT_TRUE(cli.pipeline);
  EXPECT_EQ(cli.queue_capacity, 4u);
  EXPECT_EQ(cli.snapshot_version, 1u);
  EXPECT_EQ(cli.trace_out, "t.json");
  EXPECT_EQ(cli.out_dir, ".");
  EXPECT_TRUE(cli.out_dir_ok);
  EXPECT_EQ(cli.require_out_dir(), 0);
}

TEST(CliExamples, CreatesMissingOutDir) {
  const std::string dir = std::string{::testing::TempDir()} +
                          "/scent_cli_ok_" +
                          std::to_string(reinterpret_cast<std::uintptr_t>(&dir));
  const Cli cli = parse_args({"--out-dir=" + dir + "/nested"});
  EXPECT_TRUE(cli.out_dir_ok);
  EXPECT_EQ(cli.require_out_dir(), 0);
  EXPECT_TRUE(std::filesystem::is_directory(dir + "/nested"));
  EXPECT_EQ(cli.path("x.tsv"), dir + "/nested/x.tsv");
  std::filesystem::remove_all(dir);
}

TEST(CliExamples, ExistingOutDirIsAccepted) {
  const Cli cli = parse_args({"--out-dir=" + std::string{::testing::TempDir()}});
  EXPECT_TRUE(cli.out_dir_ok);
  EXPECT_EQ(cli.require_out_dir(), 0);
}

TEST(CliExamples, UncreatableOutDirFailsLoudly) {
  // /dev/null is a file, so a directory can never be created beneath it.
  const Cli cli = parse_args({"--out-dir=/dev/null/sub"});
  EXPECT_FALSE(cli.out_dir_ok);
  EXPECT_EQ(cli.require_out_dir(), 2);
}

TEST(CliExamples, EmptyOutDirFallsBackToDot) {
  const Cli cli = parse_args({"--out-dir="});
  EXPECT_EQ(cli.out_dir, ".");
  EXPECT_TRUE(cli.out_dir_ok);
}

}  // namespace
}  // namespace scent::examples
